#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "nvcim/llm/pretrain.hpp"
#include "nvcim/obs/histogram.hpp"
#include "nvcim/obs/metrics.hpp"
#include "nvcim/obs/trace.hpp"
#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Histogram: bucket boundaries, percentile accuracy, merge, concurrency.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesPartitionTheRange) {
  obs::Histogram h;
  const obs::HistogramConfig& cfg = h.config();
  // Bucket 0 is the underflow bucket (-inf, min_value]; every later bucket
  // covers (lower, upper] with lower == previous upper.
  EXPECT_EQ(h.bucket_lower(0), 0.0);
  EXPECT_EQ(h.bucket_upper(0), cfg.min_value);
  for (std::size_t i = 1; i < h.n_buckets(); ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_lower(i), h.bucket_upper(i - 1)) << "bucket " << i;
    EXPECT_LT(h.bucket_lower(i), h.bucket_upper(i)) << "bucket " << i;
    // Log-linear promise: relative bucket width <= 1/sub_buckets.
    const double rel = (h.bucket_upper(i) - h.bucket_lower(i)) / h.bucket_lower(i);
    EXPECT_LE(rel, 1.0 / static_cast<double>(cfg.sub_buckets) + 1e-12) << "bucket " << i;
  }
  // bucket_index agrees with the boundaries it reports.
  Rng rng(7);
  for (int t = 0; t < 2000; ++t) {
    const double v = std::exp(rng.uniform(std::log(1e-4), std::log(1e4)));
    const std::size_t i = h.bucket_index(v);
    ASSERT_LT(i, h.n_buckets());
    EXPECT_GT(v, h.bucket_lower(i)) << "v=" << v;
    EXPECT_LE(v, h.bucket_upper(i) * (1.0 + 1e-15)) << "v=" << v;
  }
}

TEST(ObsHistogram, UnderflowOverflowAndNanLandInEdgeBuckets) {
  obs::Histogram h;
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(-5.0), 0u);
  EXPECT_EQ(h.bucket_index(std::nan("")), 0u);
  EXPECT_EQ(h.bucket_index(h.config().min_value), 0u);  // boundary is inclusive
  EXPECT_EQ(h.bucket_index(1e300), h.n_buckets() - 1);  // overflow clamp
}

TEST(ObsHistogram, PercentilesWithinFivePercentOfExact) {
  // The acceptance bound the serving stats promise: histogram percentiles
  // within 5% of the exact sorted-vector values, across heavy-tailed data.
  Rng rng(123);
  obs::Histogram h;
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.normal(1.0, 1.5));  // lognormal latencies (ms)
    exact.push_back(v);
    h.record(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double want =
        exact[static_cast<std::size_t>(
                  std::ceil(q * static_cast<double>(exact.size()))) -
              1];
    const double got = h.value_at_quantile(q);
    EXPECT_NEAR(got, want, 0.05 * want) << "q=" << q;
  }
  EXPECT_EQ(h.value_at_quantile(0.0), exact.front());
  EXPECT_EQ(h.value_at_quantile(1.0), exact.back());
  EXPECT_DOUBLE_EQ(h.min(), exact.front());
  EXPECT_DOUBLE_EQ(h.max(), exact.back());
}

TEST(ObsHistogram, TailQuantilesSharingOneBucketStayDistinct) {
  // Regression: the churn bench reported identical p95 and p99 because the
  // old estimator returned the same midpoint-clamped value for every
  // quantile landing in one bucket. Rank interpolation keeps them distinct
  // and monotone in q.
  obs::Histogram h;
  for (int i = 0; i < 180; ++i) h.record(1.0);
  // 20 tail samples inside ONE bucket of the default layout
  // ((3.584, 3.648] = 2.048 * (1 + 24/32 .. 1 + 25/32)).
  for (int i = 0; i < 20; ++i) h.record(3.590 + 0.002 * i);
  ASSERT_EQ(h.bucket_index(3.590), h.bucket_index(3.628));

  const double p95 = h.value_at_quantile(0.95);
  const double p99 = h.value_at_quantile(0.99);
  EXPECT_LT(p95, p99) << "quantiles in one bucket collapsed";
  // Both stay inside the bucket and inside the exact [min, max] envelope.
  EXPECT_GE(p95, 3.584);
  EXPECT_LE(p99, h.max());
  // Monotone in q across the whole tail.
  double prev = 0.0;
  for (const double q : {0.905, 0.93, 0.95, 0.97, 0.99, 0.999}) {
    const double v = h.value_at_quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(ObsHistogram, MergeMatchesCombinedRecording) {
  Rng rng(99);
  obs::Histogram a, b, combined;
  for (int i = 0; i < 3000; ++i) {
    const double v = std::exp(rng.normal(0.0, 2.0));
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge_from(b);
  ASSERT_EQ(a.count(), combined.count());
  // Addition order differs between the two paths — bit equality is too much.
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-9 * combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (std::size_t i = 0; i < a.n_buckets(); ++i)
    ASSERT_EQ(a.bucket_count(i), combined.bucket_count(i)) << "bucket " << i;
  // Mismatched layouts must refuse to merge.
  obs::HistogramConfig other;
  other.sub_buckets = 8;
  obs::Histogram c(other);
  EXPECT_THROW(a.merge_from(c), Error);
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  obs::Histogram h;
  const int kThreads = 4, kPer = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPer; ++i) h.record(std::exp(rng.normal(0.0, 1.0)));
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPer));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.n_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_GT(h.value_at_quantile(0.99), h.value_at_quantile(0.5));
}

// ---------------------------------------------------------------------------
// Tracer: ring wraparound, spans, export, disabled no-op, multi-threaded.
// ---------------------------------------------------------------------------

obs::TracerConfig tiny_tracer(std::size_t capacity) {
  obs::TracerConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = capacity;
  return cfg;
}

TEST(ObsTracer, RingWraparoundKeepsMostRecentEvents) {
  obs::Tracer tracer(tiny_tracer(8));
  for (int i = 0; i < 20; ++i)
    tracer.complete("e", "test", static_cast<double>(i), static_cast<double>(i) + 0.5,
                    "i", i);
  const std::vector<obs::TraceEvent> evs = tracer.events();
  ASSERT_EQ(evs.size(), 8u);  // ring capacity, not total recorded
  EXPECT_EQ(tracer.dropped(), 12u);
  // The survivors are exactly the newest 8, sorted by start time.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].v1, static_cast<std::int64_t>(12 + i));
    EXPECT_DOUBLE_EQ(evs[i].dur_us, 0.5);
  }
}

TEST(ObsTracer, ScopedSpansExportAsChromeTrace) {
  obs::Tracer tracer(tiny_tracer(64));
  {
    obs::Span outer(&tracer, "outer", "batch", "batch", 1);
    obs::Span inner(&tracer, "inner", "stage", "batch", 1, "B", 4);
  }
  const std::vector<obs::TraceEvent> evs = tracer.events();
  ASSERT_EQ(evs.size(), 2u);
  // Inner closes first; both spans carry non-negative durations and the
  // outer span encloses the inner one.
  EXPECT_STREQ(evs[0].name, "outer");
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_GE(evs[0].dur_us, evs[1].dur_us);
  EXPECT_LE(evs[0].ts_us, evs[1].ts_us);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"B\": 4"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces — cheap structural sanity for the hand-rolled writer.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;  // default config: disabled
  EXPECT_FALSE(tracer.enabled());
  tracer.complete("e", "test", 0.0, 1.0);
  { obs::Span span(&tracer, "s", "test"); }
  { obs::Span null_span(nullptr, "s", "test"); }  // null tracer is safe too
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.n_threads(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, MultiThreadedRecordingKeepsPerThreadRings) {
  obs::Tracer tracer(tiny_tracer(1 << 10));
  const int kThreads = 4, kPer = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPer; ++i) {
        const double ts = tracer.now_us();
        tracer.complete("e", "test", ts, ts + 1.0, "t", t);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.n_threads(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(tracer.events().size(), static_cast<std::size_t>(kThreads * kPer));
  EXPECT_EQ(tracer.dropped(), 0u);
  // Export assigns every ring a distinct tid.
  std::vector<int> per_tid(kThreads, 0);
  for (const obs::TraceEvent& e : tracer.events()) {
    ASSERT_LT(e.tid, static_cast<std::uint32_t>(kThreads));
    ++per_tid[e.tid];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_tid[t], kPer);
}

// ---------------------------------------------------------------------------
// Registry: exposition golden file, label normalization, kind safety.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, PrometheusTextMatchesGolden) {
  obs::Registry reg;
  reg.counter("test_requests_total", {}, "requests served").inc(3);
  reg.gauge("test_depth", {}, "queue depth").set(7);
  reg.counter("test_stage_ms_total", {{"stage", "encode"}}, "per-stage ms").inc(1.5);
  obs::HistogramConfig cfg;
  cfg.min_value = 1.0;
  cfg.sub_buckets = 2;
  cfg.octaves = 2;
  obs::Histogram& h = reg.histogram("test_lat_ms", {}, "latency", cfg);
  h.record(0.5);  // underflow bucket, le="1"
  h.record(1.5);  // octave 0 sub 1, le="2"
  h.record(3.0);  // octave 1 sub 1, le="4"
  const std::string golden =
      "# HELP test_depth queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth 7\n"
      "# HELP test_lat_ms latency\n"
      "# TYPE test_lat_ms histogram\n"
      "test_lat_ms_bucket{le=\"1\"} 1\n"
      "test_lat_ms_bucket{le=\"2\"} 2\n"
      "test_lat_ms_bucket{le=\"4\"} 3\n"
      "test_lat_ms_bucket{le=\"+Inf\"} 3\n"
      "test_lat_ms_sum 5\n"
      "test_lat_ms_count 3\n"
      "# HELP test_requests_total requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n"
      "# HELP test_stage_ms_total per-stage ms\n"
      "# TYPE test_stage_ms_total counter\n"
      "test_stage_ms_total{stage=\"encode\"} 1.5\n";
  EXPECT_EQ(reg.prometheus_text(), golden);
}

TEST(ObsRegistry, JsonDumpCarriesPercentiles) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", {{"tenant", "3"}}, "per-tenant latency");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const std::string json = reg.json_text();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": \"3\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsRegistry, LabelOrderNeverForksASeries) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("m", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b = reg.counter("m", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  a.inc(2);
  EXPECT_EQ(b.value(), 2.0);
}

TEST(ObsRegistry, ReusingANameAcrossKindsThrows) {
  obs::Registry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), Error);
  EXPECT_THROW(reg.histogram("m"), Error);
}

TEST(ObsRegistry, ConcurrentRecordingIsExact) {
  obs::Registry reg;
  obs::Counter& total = reg.counter("total");
  const int kThreads = 4, kPer = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg, &total, t] {
      obs::Counter& mine = reg.counter("per_thread", {{"t", std::to_string(t)}});
      for (int i = 0; i < kPer; ++i) {
        total.inc();
        mine.inc();
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total.value(), static_cast<double>(kThreads * kPer));
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("per_thread", {{"t", std::to_string(t)}}).value(),
              static_cast<double>(kPer));
}

// ---------------------------------------------------------------------------
// Engine integration: queue-wait split, frozen clock, span tree, exemplars.
// ---------------------------------------------------------------------------

/// Minimal clone of test_serve's fixture: a briefly pretrained backbone plus
/// per-user frameworks exported into a serving engine.
struct ObsEngineFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;

  ObsEngineFixture() : model(make_model()) {}

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = 16;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    llm::TinyLM m(cfg, 5);
    llm::PretrainConfig pt;
    pt.steps = 40;
    pt.batch_size = 8;
    llm::pretrain(m, task.pretraining_corpus(100, 3), pt);
    return m;
  }

  serve::ServingConfig serving_config(std::size_t n_shards, std::size_t n_threads) const {
    serve::ServingConfig cfg;
    cfg.n_shards = n_shards;
    cfg.n_threads = n_threads;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    return cfg;
  }

  void add_user(serve::ServingEngine& engine, std::size_t user_id, std::uint64_t seed) {
    core::FrameworkConfig cfg;
    cfg.tuner.n_virtual_tokens = 4;
    cfg.tuner.steps = 8;
    cfg.autoencoder.steps = 40;
    cfg.autoencoder.code_dim = 24;
    cfg.crossbar.rows = 64;
    cfg.crossbar.cols = 16;
    cfg.crossbar.adc_bits = 0;
    cfg.variation = {nvm::fefet3(), 0.0};
    cfg.noise_aware = false;
    cfg.seed = seed;
    core::NvcimPtFramework fw(model, task, cfg);
    fw.initialize_autoencoder(12);
    fw.train_from_buffer(task.make_user(user_id, 10, 0).train);
    engine.add_deployment(user_id, fw.export_deployment());
  }
};

TEST(ObsEngine, QueueSplitPercentilesAndFrozenThroughput) {
  ObsEngineFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.max_batch = 4;
  serve::ServingEngine engine(f.model, f.task, scfg);
  f.add_user(engine, 0, 600);
  engine.start();

  Rng qr(42);
  std::vector<std::pair<std::size_t, data::Sample>> requests;
  for (int i = 0; i < 32; ++i)
    requests.emplace_back(0u, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr));
  std::vector<std::future<serve::Response>> futs;
  futs.reserve(requests.size());
  for (const auto& [u, q] : requests) futs.push_back(engine.submit(u, q));
  std::vector<double> exact;
  for (auto& fu : futs) exact.push_back(fu.get().latency_ms);
  engine.stop();

  const serve::StatsSnapshot s = engine.stats();
  ASSERT_EQ(s.requests, requests.size());
  // Queue depth was at least 1 at every enqueue, and with a single worker
  // draining batches of 4, some submit saw a deeper queue.
  EXPECT_GE(s.queue_depth_hwm, 1u);
  // Percentiles are ordered and the queue-wait split obeys wait <= latency.
  EXPECT_LE(s.p50_latency_ms, s.p95_latency_ms);
  EXPECT_LE(s.p95_latency_ms, s.p99_latency_ms);
  EXPECT_LE(s.queue_wait_p50_ms, s.queue_wait_p95_ms);
  EXPECT_LE(s.queue_wait_p95_ms, s.p95_latency_ms * 1.05);
  // Histogram percentiles land within 5% of the exact per-response values.
  std::sort(exact.begin(), exact.end());
  const auto exact_q = [&exact](double q) {
    return exact[static_cast<std::size_t>(
                     std::ceil(q * static_cast<double>(exact.size()))) -
                 1];
  };
  EXPECT_NEAR(s.p50_latency_ms, exact_q(0.50), 0.05 * exact_q(0.50));
  EXPECT_NEAR(s.p95_latency_ms, exact_q(0.95), 0.05 * exact_q(0.95));
  EXPECT_NEAR(s.p99_latency_ms, exact_q(0.99), 0.05 * exact_q(0.99));

  // stop() froze the clock: a later snapshot reports the same throughput
  // instead of decaying against the wall clock.
  EXPECT_GT(s.throughput_rps, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_DOUBLE_EQ(engine.stats().throughput_rps, s.throughput_rps);
}

TEST(ObsEngine, TraceLinksRequestBatchStageAndShardSpans) {
  ObsEngineFixture f;
  serve::ServingConfig scfg = f.serving_config(2, 2);
  scfg.tracing.enabled = true;
  serve::ServingEngine engine(f.model, f.task, scfg);
  f.add_user(engine, 0, 610);
  f.add_user(engine, 1, 611);
  engine.start();

  Rng qr(43);
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 12; ++i)
    futs.push_back(engine.submit(static_cast<std::size_t>(i % 2),
                                 f.task.sample(qr.uniform_index(f.task.config().n_domains), qr)));
  for (auto& fu : futs) fu.get();
  engine.stop();

  const std::vector<obs::TraceEvent> evs = engine.tracer().events();
  std::size_t requests = 0, batches = 0, stages = 0, shards = 0;
  for (const obs::TraceEvent& e : evs) {
    const std::string cat = e.cat;
    if (cat == "request") ++requests;
    if (cat == "batch") ++batches;
    if (cat == "stage") ++stages;
    if (cat == "shard") ++shards;
  }
  EXPECT_EQ(requests, 12u);  // one span per served request
  EXPECT_GE(batches, 1u);
  EXPECT_GE(stages, 4u * batches);  // four stages per batch
  EXPECT_GE(shards, batches);       // at least one shard pass per batch
  EXPECT_EQ(engine.tracer().dropped(), 0u);

  std::ostringstream os;
  engine.tracer().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"process_batch\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_retrieve\""), std::string::npos);
  EXPECT_NE(json.find("\"request\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsEngine, SlowRequestExemplarsAndExposition) {
  ObsEngineFixture f;
  serve::ServingConfig scfg = f.serving_config(1, 1);
  scfg.slow_request_ms = 1e-6;  // everything is "slow": exemplars for all
  serve::ServingEngine engine(f.model, f.task, scfg);
  f.add_user(engine, 0, 620);
  engine.start();

  Rng qr(44);
  std::vector<std::future<serve::Response>> futs;
  for (int i = 0; i < 6; ++i)
    futs.push_back(engine.submit(0, f.task.sample(qr.uniform_index(f.task.config().n_domains), qr)));
  for (auto& fu : futs) fu.get();
  engine.stop();

  const std::vector<serve::SlowRequest> slow = engine.slow_requests();
  ASSERT_FALSE(slow.empty());
  ASSERT_LE(slow.size(), 64u);  // bounded ring
  for (const serve::SlowRequest& sr : slow) {
    EXPECT_EQ(sr.user_id, 0u);
    EXPECT_GE(sr.latency_ms, sr.queue_wait_ms);
    EXPECT_GE(sr.encode_ms + sr.retrieve_ms + sr.decode_ms + sr.classify_ms, 0.0);
  }

  // The engine's registry exposes the full metric catalogue, including the
  // per-tenant series the scheduler roadmap needs.
  const std::string prom = engine.metrics().prometheus_text();
  EXPECT_NE(prom.find("nvcim_request_latency_ms_count 6"), std::string::npos);
  EXPECT_NE(prom.find("nvcim_tenant_requests_total{tenant=\"0\"} 6"), std::string::npos);
  EXPECT_NE(prom.find("nvcim_queue_wait_ms_bucket"), std::string::npos);
  EXPECT_NE(prom.find("nvcim_queue_depth_hwm"), std::string::npos);
  EXPECT_NE(prom.find("nvcim_stage_ms_total{stage=\"encode\"}"), std::string::npos);
}

}  // namespace
}  // namespace nvcim
