// Live introspection plane (PR 10): rolling delta-ring windows, dual-window
// SLO burn rates, the embedded HTTP admin server, and the engine health
// verdict behind /healthz.
//
//  - windows run on an explicit deterministic clock: deltas isolate recent
//    traffic, quantiles match the source histogram to bucket resolution,
//    warm-up falls back to since-start, retention bounds the ring
//  - burn-rate states need BOTH windows over threshold (a fast-only spike
//    never pages), and a zero error budget burns infinitely on any miss
//  - the HTTP server routes, strips query strings, and maps unknown paths /
//    bad methods / throwing handlers to 404/405/500
//  - a live /metrics scrape is byte-identical to the in-process exposition
//  - /healthz flips Critical (503) during a fault storm and recovers to Ok
//    (200) after scrub_now(); queue saturation and an always-bad latency SLO
//    also drive 503
//  - evicting a tenant retires its labelled series; re-admission revives
//
// The Introspection* engine suites run under ASan/TSan in CI.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nvcim/obs/httpd.hpp"
#include "nvcim/obs/slo.hpp"
#include "nvcim/obs/window.hpp"
#include "nvcim/serve/engine.hpp"

namespace nvcim {
namespace {

// ---------------------------------------------------------------------------
// Rolling windows (deterministic clock).
// ---------------------------------------------------------------------------

TEST(ObsWindow, DeltaIsolatesRecentTraffic) {
  obs::Histogram h;
  obs::WindowConfig wc{1000.0, 5, 60000.0};
  obs::HistogramWindow w(&h, wc);
  EXPECT_TRUE(w.advance(0.0));    // seeds the ring
  EXPECT_FALSE(w.advance(500.0)); // idempotent within a bucket

  for (int i = 0; i < 100; ++i) h.record(10.0);
  EXPECT_TRUE(w.advance(1000.0));
  for (int i = 0; i < 200; ++i) h.record(1000.0);
  EXPECT_TRUE(w.advance(2000.0));

  // The last second saw only the 1000.0 records.
  const obs::WindowDelta recent = w.delta(2000.0, 1000.0);
  EXPECT_EQ(recent.count(), 200u);
  EXPECT_NEAR(recent.span_ms(), 1000.0, 1e-9);
  EXPECT_NEAR(recent.rate_per_sec(), 200.0, 1e-9);
  EXPECT_NEAR(recent.mean(), 1000.0, 50.0);
  EXPECT_NEAR(recent.value_at_quantile(0.5), 1000.0, 50.0);
  EXPECT_EQ(recent.count_le(100.0), 0u);

  // A two-second window reaches back to the seed and sees both phases.
  const obs::WindowDelta both = w.delta(2000.0, 2000.0);
  EXPECT_EQ(both.count(), 300u);
  EXPECT_EQ(both.count_le(100.0), 100u);
}

TEST(ObsWindow, QuantilesMatchHistogramToBucketResolution) {
  obs::Histogram h;
  obs::HistogramWindow w(&h, obs::WindowConfig{1000.0, 5, 60000.0});
  w.advance(0.0);
  // Deterministic spread over ~0.5..100.4 ms.
  for (int i = 0; i < 2000; ++i) h.record(0.5 + static_cast<double>((i * 37) % 1000) * 0.1);
  w.advance(1000.0);

  // The window covers every record, so its rank-interpolated quantiles must
  // agree with the histogram's own (which additionally clamp to the exact
  // observed min/max) to within the log-linear bucket resolution.
  const obs::WindowDelta d = w.delta(1000.0, 1000.0);
  ASSERT_EQ(d.count(), 2000u);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = h.value_at_quantile(q);
    EXPECT_NEAR(d.value_at_quantile(q), exact, 0.05 * exact) << "q=" << q;
  }
}

TEST(ObsWindow, WarmupFallsBackToSinceStart) {
  obs::Histogram h;
  obs::HistogramWindow w(&h, obs::WindowConfig{1000.0, 5, 60000.0});
  w.advance(0.0);
  for (int i = 0; i < 10; ++i) h.record(5.0);
  // Mid-bucket, asking for a much wider window than the ring holds: the
  // delta spans since start, not the requested window.
  const obs::WindowDelta d = w.delta(500.0, 5000.0);
  EXPECT_EQ(d.count(), 10u);
  EXPECT_NEAR(d.span_ms(), 500.0, 1e-9);
}

TEST(ObsWindow, RetentionBoundsRingAndKeepsWindowReadable) {
  obs::Histogram h;
  obs::HistogramWindow w(&h, obs::WindowConfig{1000.0, 3, 3000.0});
  w.advance(0.0);
  for (int t = 1; t <= 10; ++t) {
    for (int i = 0; i < 5; ++i) h.record(1.0);
    EXPECT_TRUE(w.advance(1000.0 * t));
    // One baseline older than retention plus retention/bucket live entries.
    EXPECT_LE(w.ring_size(), 5u) << "t=" << t;
  }
  const obs::WindowDelta d = w.delta(10000.0, 3000.0);
  EXPECT_EQ(d.count(), 15u);  // exactly the last three buckets
  EXPECT_NEAR(d.span_ms(), 3000.0, 1e-9);
}

TEST(ObsWindow, CounterWindowRates) {
  obs::Counter c;
  obs::CounterWindow w(&c, obs::WindowConfig{1000.0, 5, 60000.0});
  w.advance(0.0);
  for (int t = 1; t <= 3; ++t) {
    c.inc(5.0);
    w.advance(1000.0 * t);
  }
  const obs::CounterWindow::Delta d = w.delta(3000.0, 2000.0);
  EXPECT_NEAR(d.value, 10.0, 1e-9);
  EXPECT_NEAR(d.span_ms, 2000.0, 1e-9);
  EXPECT_NEAR(d.rate_per_sec(), 5.0, 1e-9);

  // Full-history window: everything since the seed.
  EXPECT_NEAR(w.delta(3000.0, 3000.0).value, 15.0, 1e-9);
}

// ---------------------------------------------------------------------------
// SLO burn rates (pure).
// ---------------------------------------------------------------------------

TEST(ObsSlo, BurnRateNeedsBothWindowsOverThreshold) {
  const obs::BurnRateConfig bc;  // warn at 2x, critical at 10x
  const double objective = 0.99; // 1% error budget

  // Clean traffic: no burn.
  obs::BurnRate b = obs::evaluate_burn_rate({1000, 0}, {5000, 0}, objective, bc);
  EXPECT_EQ(b.state, obs::HealthState::Ok);
  EXPECT_NEAR(b.fast, 0.0, 1e-12);

  // 3% bad in both windows: 3x burn, warning.
  b = obs::evaluate_burn_rate({1000, 30}, {5000, 150}, objective, bc);
  EXPECT_EQ(b.state, obs::HealthState::Warning);
  EXPECT_NEAR(b.fast, 3.0, 1e-9);
  EXPECT_NEAR(b.slow, 3.0, 1e-9);

  // 15% bad in both: 15x burn, critical.
  b = obs::evaluate_burn_rate({1000, 150}, {5000, 750}, objective, bc);
  EXPECT_EQ(b.state, obs::HealthState::Critical);

  // A fast-window-only spike never pages: the slow window is clean.
  b = obs::evaluate_burn_rate({1000, 150}, {5000, 0}, objective, bc);
  EXPECT_EQ(b.state, obs::HealthState::Ok);
}

TEST(ObsSlo, EmptyWindowsAndZeroBudgetEdges) {
  const obs::BurnRateConfig bc;
  // No traffic: no burn, Ok.
  obs::BurnRate b = obs::evaluate_burn_rate({0, 0}, {0, 0}, 0.99, bc);
  EXPECT_EQ(b.state, obs::HealthState::Ok);
  EXPECT_NEAR(b.fast, 0.0, 1e-12);

  // Objective 1.0 means zero budget: any miss is an infinite burn.
  b = obs::evaluate_burn_rate({10, 1}, {10, 1}, 1.0, bc);
  EXPECT_EQ(b.state, obs::HealthState::Critical);
  EXPECT_TRUE(std::isinf(b.fast));

  EXPECT_EQ(obs::worst(obs::HealthState::Warning, obs::HealthState::Critical),
            obs::HealthState::Critical);
  EXPECT_STREQ(obs::to_string(obs::HealthState::Warning), "warning");
}

// ---------------------------------------------------------------------------
// Embedded HTTP server.
// ---------------------------------------------------------------------------

TEST(ObsHttp, RoutesQueryStringsAndErrorPaths) {
  obs::HttpServerConfig hc;  // port 0: ephemeral
  obs::HttpServer s(hc);
  s.handle("/hello", [](const std::string& target) {
    obs::HttpResponse r;
    r.body = "hi " + target;
    return r;
  });
  s.handle("/boom", [](const std::string&) -> obs::HttpResponse {
    throw std::runtime_error("kaboom");
  });
  ASSERT_TRUE(s.start());
  ASSERT_NE(s.port(), 0);
  EXPECT_TRUE(s.running());

  std::string body;
  EXPECT_EQ(obs::http_get("127.0.0.1", s.port(), "/hello", &body), 200);
  EXPECT_EQ(body, "hi /hello");
  // The query string is stripped for routing but passed to the handler.
  EXPECT_EQ(obs::http_get("127.0.0.1", s.port(), "/hello?q=1", &body), 200);
  EXPECT_EQ(body, "hi /hello?q=1");
  EXPECT_EQ(obs::http_get("127.0.0.1", s.port(), "/nope", nullptr), 404);
  EXPECT_EQ(obs::http_get("127.0.0.1", s.port(), "/boom", &body), 500);

  s.stop();
  s.stop();  // idempotent
  EXPECT_FALSE(s.running());
}

// ---------------------------------------------------------------------------
// EngineStats: windowed SLIs, derived gauges and tenant-series lifecycle
// (deterministic clock via the explicit-now APIs).
// ---------------------------------------------------------------------------

TEST(IntrospectionStats, WindowedPercentilesTrackCumulativeOverSteadyPhase) {
  obs::WindowConfig wc{1000.0, 10, 60000.0};
  serve::EngineStats st(wc);
  st.advance_windows(0.0);

  // Steady phase: 600 requests, latencies cycling 1.0..10.9 ms.
  double now = 0.0;
  for (int i = 0; i < 600; ++i) {
    st.record_request(static_cast<std::size_t>(i % 4),
                      1.0 + 0.1 * static_cast<double>(i % 100), 0.2, false);
    if (i % 60 == 59) {
      now += 1000.0;
      st.advance_windows(now);
    }
  }

  // Acceptance: over a steady phase the windowed p95 stays within 10% of the
  // cumulative (exact-min/max-clamped) histogram p95. Everything recorded so
  // far is inside the primary window, so they estimate the same population.
  const serve::WindowedSli sli = st.windowed_at(now, 50.0, wc.window_ms());
  const serve::StatsSnapshot snap = st.snapshot();
  ASSERT_EQ(sli.stats.requests, 600u);
  EXPECT_NEAR(sli.stats.p50_latency_ms, snap.p50_latency_ms, 0.10 * snap.p50_latency_ms);
  EXPECT_NEAR(sli.stats.p95_latency_ms, snap.p95_latency_ms, 0.10 * snap.p95_latency_ms);
  EXPECT_NEAR(sli.stats.p99_latency_ms, snap.p99_latency_ms, 0.10 * snap.p99_latency_ms);
  EXPECT_NEAR(sli.stats.throughput_rps, 60.0, 1.0);
  EXPECT_EQ(sli.latency.bad, 0u);  // all under the 50 ms threshold

  // Regression phase: 300 requests at ~100x the latency. The rolling window
  // pins on the incident while the cumulative p50 stays diluted.
  for (int i = 0; i < 300; ++i) {
    st.record_request(static_cast<std::size_t>(i % 4),
                      100.0 + 0.1 * static_cast<double>(i % 100), 0.2, false);
    if (i % 60 == 59) {
      now += 1000.0;
      st.advance_windows(now);
    }
  }
  const serve::WindowedSli incident = st.windowed_at(now, 50.0, 5000.0);
  EXPECT_EQ(incident.stats.requests, 300u);
  EXPECT_GT(incident.stats.p50_latency_ms, 90.0);
  EXPECT_EQ(incident.latency.bad, 300u);  // every request over threshold
  EXPECT_LT(st.snapshot().p50_latency_ms, 20.0);

  // Composed with the burn evaluator this is exactly the paging signal:
  // 100% bad against a 1% budget in both windows.
  const serve::WindowedSli slow_w = st.windowed_at(now, 50.0, wc.window_ms());
  const obs::BurnRate burn =
      obs::evaluate_burn_rate(incident.latency, slow_w.latency, 0.99, obs::BurnRateConfig{});
  EXPECT_EQ(burn.state, obs::HealthState::Critical);
}

TEST(IntrospectionStats, WindowedRatesDecayAfterIncident) {
  obs::WindowConfig wc{1000.0, 5, 60000.0};
  serve::EngineStats st(wc);
  st.advance_windows(0.0);

  // Incident phase (t=0..5s): half the responses degraded, some expiries
  // and late completions.
  double now = 0.0;
  for (int i = 0; i < 100; ++i) {
    st.record_request(0, 5.0, 0.5, false);
    if (i % 2 == 0) st.record_degraded_response();
    if (i % 20 == 0) {
      st.record_tenant_candidates(0, 1);
      st.record_expired(0);
      st.record_deadline_miss(0);
    }
    if (i % 20 == 19) {
      now += 1000.0;
      st.advance_windows(now);
    }
  }
  const serve::WindowedSli during = st.windowed_at(now, 50.0, wc.window_ms());
  EXPECT_EQ(during.availability.total, 100u);
  EXPECT_EQ(during.availability.bad, 50u);
  EXPECT_NEAR(during.stats.degraded_rate, 0.5, 1e-9);
  EXPECT_EQ(during.deadline.bad, 10u);  // 5 late + 5 expired
  EXPECT_GT(during.stats.error_rate, 0.0);

  // Clean phase (t=5..10s): the rates decay to zero as the incident leaves
  // the window — this is the health state machine's recovery edge.
  for (int i = 0; i < 100; ++i) {
    st.record_request(0, 5.0, 0.5, false);
    if (i % 20 == 19) {
      now += 1000.0;
      st.advance_windows(now);
    }
  }
  const serve::WindowedSli after = st.windowed_at(now, 50.0, wc.window_ms());
  EXPECT_EQ(after.availability.total, 100u);
  EXPECT_EQ(after.availability.bad, 0u);
  EXPECT_NEAR(after.stats.degraded_rate, 0.0, 1e-12);
  EXPECT_NEAR(after.stats.error_rate, 0.0, 1e-12);
  EXPECT_NEAR(after.stats.deadline_miss_rate, 0.0, 1e-12);
}

TEST(IntrospectionStats, TenantRetirementDropsSeriesAndReviveRestarts) {
  serve::EngineStats st;
  st.record_request(7, 5.0, 1.0, false);
  st.record_request(8, 5.0, 1.0, false);
  EXPECT_NE(st.registry().prometheus_text().find("tenant=\"7\""), std::string::npos);

  st.retire_tenant(7);
  std::string text = st.registry().prometheus_text();
  EXPECT_EQ(text.find("tenant=\"7\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"8\""), std::string::npos);  // others untouched
  EXPECT_NE(text.find("nvcim_tenants_retired_total 1"), std::string::npos);
  EXPECT_EQ(st.snapshot().tenants_retired, 1u);

  // Stragglers for a retired tenant record globally, never resurrecting the
  // labelled series; repeat retirement is a no-op.
  st.record_request(7, 5.0, 1.0, false);
  st.retire_tenant(7);
  text = st.registry().prometheus_text();
  EXPECT_EQ(text.find("tenant=\"7\""), std::string::npos);
  EXPECT_EQ(st.snapshot().tenants_retired, 1u);
  EXPECT_EQ(st.snapshot().requests, 3u);  // the straggler still counted globally

  // Re-admission starts a fresh labelled series from zero.
  st.revive_tenant(7);
  st.record_request(7, 5.0, 1.0, false);
  EXPECT_NE(st.registry().prometheus_text().find(
                "nvcim_tenant_requests_total{tenant=\"7\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine-level introspection (threaded; ASan/TSan in CI).
// ---------------------------------------------------------------------------

llm::TinyLM intro_model(std::size_t vocab, std::uint64_t seed) {
  llm::TinyLmConfig cfg;
  cfg.vocab = vocab;
  cfg.d_model = 16;
  cfg.n_layers = 1;
  cfg.n_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq = 40;
  cfg.prompt_slots = 8;
  return llm::TinyLM(cfg, seed);
}

struct IntrospectionFixture {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::shared_ptr<const compress::Autoencoder> autoencoder;

  IntrospectionFixture() : model(intro_model(task.vocab_size(), 23)) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = 16;
    acfg.code_dim = 24;
    acfg.hidden_dim = 32;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
  }

  core::TrainedDeployment make_deployment(std::size_t user, std::size_t n_keys = 6) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = 4;
    Rng rng(6000 + user);
    for (std::size_t k = 0; k < n_keys; ++k) {
      d.keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig config(std::size_t shards, std::size_t threads, std::size_t batch) {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    cfg.lifecycle.enabled = true;
    cfg.seed = 2026;
    cfg.introspection.enabled = true;  // port 0: ephemeral
    // Keep the latency SLO out of the way unless a test opts in: engine
    // wall-clock under sanitizers would otherwise burn the default budget.
    cfg.slo.latency_threshold_ms = 1e9;
    return cfg;
  }

  data::Sample query(Rng& rng) {
    return task.sample(rng.uniform_index(task.config().n_domains), rng);
  }
};

TEST(Introspection, MetricsScrapeByteIdenticalToInProcessExposition) {
  IntrospectionFixture f;
  serve::ServingConfig cfg = f.config(2, 2, 4);
  cfg.window.bucket_ms = 1e12;  // freeze derived gauges: no boundary crossings
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const std::uint16_t port = engine.introspection_port();
  ASSERT_NE(port, 0);

  Rng qr(901);
  for (int t = 0; t < 6; ++t) engine.serve(static_cast<std::size_t>(t) % 2, f.query(qr));

  // The batch worker records its stage-time totals just after fulfilling the
  // response futures, so poll until the traffic quiesces: once it has, the
  // scrape must be byte-identical to the in-process exposition.
  std::string scraped, inproc;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    ASSERT_EQ(obs::http_get("127.0.0.1", port, "/metrics", &scraped), 200);
    inproc = engine.metrics().prometheus_text();
  } while (scraped != inproc && std::chrono::steady_clock::now() < deadline);
  EXPECT_EQ(scraped, inproc);
  EXPECT_NE(scraped.find("nvcim_request_latency_ms_count 6"), std::string::npos);
  EXPECT_NE(scraped.find("nvcim_queue_depth 0"), std::string::npos);
  EXPECT_NE(scraped.find("nvcim_throughput_rps_1m"), std::string::npos);

  // The rest of the plane answers too.
  std::string body;
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/", &body), 200);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/metrics.json", &body), 200);
  EXPECT_NE(body.find("nvcim_request_latency_ms"), std::string::npos);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/debug/engine", &body), 200);
  EXPECT_NE(body.find("\"requests\": 6"), std::string::npos);
  EXPECT_NE(body.find("\"last_minute\""), std::string::npos);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/debug/slow", &body), 200);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/debug/trace", &body), 200);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/nope", &body), 404);

  engine.stop();
  EXPECT_EQ(engine.introspection_port(), 0);  // server gone with the engine
}

TEST(Introspection, HealthzCriticalDuringFaultStormRecoversAfterScrub) {
  IntrospectionFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 8));
  for (std::size_t u = 0; u < 4; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const std::uint16_t port = engine.introspection_port();
  ASSERT_NE(port, 0);

  // Healthy baseline.
  serve::HealthReport r = engine.health();
  EXPECT_EQ(r.state, obs::HealthState::Ok);
  EXPECT_TRUE(r.ready);
  EXPECT_GT(r.subarrays_total, 0u);
  EXPECT_EQ(r.subarrays_degraded, 0u);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", nullptr), 200);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/readyz", nullptr), 200);

  // Storm: age the whole device, then detect-only scrubs publish every
  // subarray Degraded (no repair yet — the background scrubber is off).
  engine.store_mutable().set_drift_rate(0.05);
  engine.store_mutable().advance_age(2);
  serve::ScrubPolicy detect;
  detect.auto_repair = false;
  detect.auto_migrate = false;
  for (std::size_t s = 0; s < engine.store().n_shards(); ++s)
    for (std::size_t sub = 0; sub < engine.store().shard_subarrays(s); ++sub)
      engine.store_mutable().scrub_subarray(s, sub, detect);

  r = engine.health();
  EXPECT_EQ(r.state, obs::HealthState::Critical);
  EXPECT_GT(r.subarrays_degraded, 0u);
  EXPECT_FALSE(r.reasons.empty());
  std::string body;
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", &body), 503);
  EXPECT_NE(body.find("\"state\": \"critical\""), std::string::npos);
  EXPECT_NE(body.find("device fleet degraded"), std::string::npos);

  // One repairing scrub pass fixes the drift and clears the health marks:
  // /healthz recovers to 200.
  const serve::ScrubOutcome out = engine.scrub_now();
  EXPECT_GT(out.columns_repaired, 0u);
  r = engine.health();
  EXPECT_EQ(r.state, obs::HealthState::Ok) << r.json();
  EXPECT_EQ(r.subarrays_degraded, 0u);
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", &body), 200);
  EXPECT_NE(body.find("\"state\": \"ok\""), std::string::npos);
  engine.stop();
}

TEST(Introspection, HealthzCriticalWhenQueueSaturatedAndRecoversOnDrain) {
  IntrospectionFixture f;
  serve::ServingConfig cfg = f.config(2, 1, 8);
  // A worker that can never see min_batch queued requests holds the queue at
  // capacity for the whole coalescing window: deterministic saturation.
  cfg.min_batch = 8;
  cfg.batch_window_ms = 1500.0;
  cfg.queue_capacity = 4;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const std::uint16_t port = engine.introspection_port();
  ASSERT_NE(port, 0);

  Rng qr(911);
  std::vector<std::future<serve::Response>> futures;
  for (int t = 0; t < 4; ++t)
    futures.push_back(engine.submit(static_cast<std::size_t>(t) % 2, f.query(qr)));

  // The queue sits at 4/4 while the worker waits out the batch window.
  bool saw_critical = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const serve::HealthReport r = engine.health();
    if (r.state == obs::HealthState::Critical && r.queue_depth >= r.queue_capacity) {
      saw_critical = true;
      EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", nullptr), 503);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_critical);

  for (auto& fu : futures) fu.get();
  // Drained: the live gauge and the verdict both recover.
  const auto recover = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  serve::HealthReport r = engine.health();
  while ((r.queue_depth != 0 || r.state != obs::HealthState::Ok) &&
         std::chrono::steady_clock::now() < recover) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    r = engine.health();
  }
  EXPECT_EQ(r.queue_depth, 0u);
  EXPECT_EQ(r.state, obs::HealthState::Ok) << r.json();
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", nullptr), 200);
  EXPECT_EQ(engine.stats().queue_depth, 0u);
  engine.stop();
}

TEST(Introspection, LatencySloBurnDrivesHealthzCritical) {
  IntrospectionFixture f;
  serve::ServingConfig cfg = f.config(2, 2, 4);
  cfg.slo.latency_threshold_ms = 1e-6;  // every request misses the SLO
  cfg.slo.latency_objective = 0.99;
  serve::ServingEngine engine(f.model, f.task, cfg);
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();
  const std::uint16_t port = engine.introspection_port();
  ASSERT_NE(port, 0);

  Rng qr(921);
  for (int t = 0; t < 8; ++t) engine.serve(static_cast<std::size_t>(t) % 2, f.query(qr));

  // 100% bad against a 1% budget: 100x burn in both (warm-up) windows.
  const serve::HealthReport r = engine.health();
  EXPECT_EQ(r.state, obs::HealthState::Critical) << r.json();
  ASSERT_EQ(r.slos.size(), 3u);
  EXPECT_EQ(r.slos[0].name, "latency");
  EXPECT_EQ(r.slos[0].burn.state, obs::HealthState::Critical);
  EXPECT_GT(r.slos[0].burn.fast, 10.0);
  EXPECT_EQ(r.slos[1].burn.state, obs::HealthState::Ok);  // availability clean
  std::string body;
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/healthz", &body), 503);
  EXPECT_NE(body.find("latency SLO burning"), std::string::npos);
  engine.stop();
}

TEST(Introspection, ReadyzTracksEngineLifecycle) {
  IntrospectionFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 4));
  for (std::size_t u = 0; u < 2; ++u) engine.add_deployment(u, f.make_deployment(u));

  EXPECT_FALSE(engine.health().ready);  // workers not up yet
  EXPECT_EQ(engine.introspection_port(), 0);

  engine.start();
  EXPECT_TRUE(engine.health().ready);
  const std::uint16_t port = engine.introspection_port();
  ASSERT_NE(port, 0);
  std::string body;
  EXPECT_EQ(obs::http_get("127.0.0.1", port, "/readyz", &body), 200);
  EXPECT_NE(body.find("\"ready\": true"), std::string::npos);

  engine.stop();
  EXPECT_FALSE(engine.health().ready);
}

TEST(Introspection, EvictedTenantSeriesRetiredFromLiveExposition) {
  IntrospectionFixture f;
  serve::ServingEngine engine(f.model, f.task, f.config(2, 2, 4));
  for (std::size_t u = 0; u < 3; ++u) engine.add_deployment(u, f.make_deployment(u));
  engine.start();

  Rng qr(931);
  for (int t = 0; t < 6; ++t) engine.serve(static_cast<std::size_t>(t) % 3, f.query(qr));
  std::string text = engine.metrics().prometheus_text();
  EXPECT_NE(text.find("tenant=\"0\""), std::string::npos);

  engine.evict_user(0);
  text = engine.metrics().prometheus_text();
  EXPECT_EQ(text.find("tenant=\"0\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"1\""), std::string::npos);
  EXPECT_EQ(engine.stats().tenants_retired, 1u);

  // Re-admission revives the labelled series from zero.
  engine.admit_user(0, f.make_deployment(0));
  engine.wait_admitted(0);
  engine.serve(0, f.query(qr));
  text = engine.metrics().prometheus_text();
  EXPECT_NE(text.find("nvcim_tenant_requests_total{tenant=\"0\"} 1"), std::string::npos);
  engine.stop();
}

}  // namespace
}  // namespace nvcim
