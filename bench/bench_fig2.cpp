// Fig. 2: the resource cost of keeping OVTs without NVCiM —
//  (a) DRAM/storage footprint vs number of OVTs (×100),
//  (b) SSD→DRAM transfer time vs number of OVTs (×1000).
// Sizing uses paper-scale LLM dimensions (≈20 virtual tokens × 2048 dim,
// fp16) — see cim::OvtSizingModel.
#include <cstdio>

#include "nvcim/cim/perf.hpp"

using namespace nvcim;

int main() {
  std::printf("=== Fig. 2a — memory footprint of stored OVTs ===\n");
  std::printf("%-22s %14s\n", "#OVTs (x100)", "memory (x100 MB)");
  cim::OvtSizingModel sizing;
  for (std::size_t n100 : {10, 30, 50, 70, 90}) {
    const double bytes = sizing.total_bytes(n100 * 100);
    std::printf("%-22zu %14.2f\n", n100, bytes / 100e6);
  }

  std::printf("\n=== Fig. 2b — SSD->DRAM data moving time ===\n");
  std::printf("%-22s %14s\n", "#OVTs (x1000)", "transfer (s)");
  const cim::CpuPerfParams cpu = cim::jetson_orin_cpu();
  for (double n1000 : {0.1, 1.0, 5.0, 20.0, 100.0}) {
    const double bytes = sizing.total_bytes(static_cast<std::size_t>(n1000 * 1000.0));
    std::printf("%-22.1f %14.2f\n", n1000, cim::ssd_transfer_seconds(bytes, cpu));
  }
  std::printf("\nExpected shape (paper): both curves grow linearly; ~100k OVTs\n"
              "cost ~40 s of SSD traffic per retrieval working-set swap.\n");
  return 0;
}
