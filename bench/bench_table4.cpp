// Table IV: device-variation sweep σ ∈ {0.025..0.150} on NVM-3 (FeFET3),
// Phi-2 on LaMP-5, buffer 20 — the noise-aware-training study.
#include "bench_common.hpp"

using namespace nvcim;

int main() {
  bench::print_header("Table IV — device-variation sweep (NVM-3, Phi-2, LaMP-5, buffer 20)");
  const auto methods = core::table1_methods();
  const auto device = nvm::fefet3();

  core::ExperimentOptions opts = bench::scaled_options();
  opts.buffer_size = 20;
  core::ExperimentContext ctx(llm::phi2_sim(), data::lamp5_config(), opts);

  std::printf("%-12s", "sigma");
  for (const auto& m : methods) std::printf(" %13s", m.name.c_str());
  std::printf("\n");

  for (double sigma : {0.025, 0.050, 0.075, 0.100, 0.125, 0.150}) {
    std::printf("%-12.3f", sigma);
    double best = -1.0;
    std::size_t best_i = 0;
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      const double v = ctx.evaluate(methods[mi], device, sigma);
      if (v > best) {
        best = v;
        best_i = mi;
      }
      std::printf(" %13.3f", v);
    }
    std::printf("  << %s\n", methods[best_i].name.c_str());
  }
  std::printf("\nExpected shape (paper): slow degradation with σ for every method;\n"
              "NVCiM-PT stays on top across the sweep.\n");
  return 0;
}
