#pragma once

// Shared helpers for the paper-reproduction harnesses.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "nvcim/core/experiment.hpp"

namespace nvcim::bench {

/// Experiment scale, overridable via environment so the same binaries can
/// run a quick regeneration (default) or approach the paper's 100-user
/// protocol (NVCIM_USERS=..., NVCIM_TESTS=...).
inline core::ExperimentOptions scaled_options() {
  core::ExperimentOptions opts;
  opts.n_users = 4;
  opts.n_test = 12;
  if (const char* e = std::getenv("NVCIM_USERS")) opts.n_users = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("NVCIM_TESTS")) opts.n_test = std::strtoul(e, nullptr, 10);
  return opts;
}

inline void print_header(const char* what) {
  std::printf("================================================================\n");
  std::printf("%s\n", what);
  std::printf("(synthetic substrate — compare trends/shape with the paper,\n");
  std::printf(" not absolute values; see EXPERIMENTS.md)\n");
  std::printf("================================================================\n");
}

}  // namespace nvcim::bench
