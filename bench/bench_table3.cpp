// Table III: buffer-size sweep (10..60 samples) on NVM-3 (FeFET3) with
// σ = 0.1, Phi-2 on LaMP-5 — the representative-selection study.
#include "bench_common.hpp"

using namespace nvcim;

int main() {
  bench::print_header("Table III — buffer-size sweep (NVM-3, σ=0.1, Phi-2, LaMP-5)");
  const auto methods = core::table1_methods();
  const auto device = nvm::fefet3();

  std::printf("%-12s", "buffer");
  for (const auto& m : methods) std::printf(" %13s", m.name.c_str());
  std::printf("\n");

  for (std::size_t buffer : {10u, 20u, 30u, 40u, 50u, 60u}) {
    core::ExperimentOptions opts = bench::scaled_options();
    opts.buffer_size = buffer;
    core::ExperimentContext ctx(llm::phi2_sim(), data::lamp5_config(), opts);
    std::printf("%-12zu", buffer);
    double best = -1.0;
    std::size_t best_i = 0;
    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      const double v = ctx.evaluate(methods[mi], device, 0.1);
      if (v > best) {
        best = v;
        best_i = mi;
      }
      std::printf(" %13.3f", v);
    }
    std::printf("  << %s\n", methods[best_i].name.c_str());
  }
  std::printf("\nExpected shape (paper): NVCiM-PT leads at every size; medium\n"
              "buffers (~30) peak because Eq. 2 grants enough clusters without\n"
              "diluting each domain's training signal.\n");
  return 0;
}
