// Fig. 5: latency and energy of the scaled search on RRAM / FeFET NVCiM vs
// the Jetson-Orin-class CPU, as a function of the number of stored data
// samples (OVTs). Two parts:
//   1. google-benchmark timings of the *functional* crossbar retrieval
//      kernel vs a CPU dot-product scan (small scales — what fits the
//      cycle-free simulator);
//   2. the analytical NeuroSim-lite sweep that reproduces the figure's
//      series out to 1e7 samples.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "nvcim/cim/accelerator.hpp"
#include "nvcim/cim/perf.hpp"

using namespace nvcim;

namespace {

constexpr std::size_t kKeyLen = 384;  // one 8-token OVT code (8 × 48)

Matrix make_keys(std::size_t n, Rng& rng) { return Matrix::randn(n, kKeyLen, rng); }

void BM_CrossbarRetrieval(benchmark::State& state) {
  const std::size_t n_keys = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  cim::Accelerator acc(cim::CrossbarConfig{}, {nvm::fefet3(), 0.1});
  Rng store_rng(2);
  acc.store(make_keys(n_keys, rng), store_rng);
  const Matrix q = Matrix::randn(1, kKeyLen, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.query(q));
  }
  state.SetComplexityN(state.range(0));
}

void BM_CpuScanRetrieval(benchmark::State& state) {
  const std::size_t n_keys = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix keys = make_keys(n_keys, rng);
  const Matrix q = Matrix::randn(1, kKeyLen, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(q, keys));
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_CrossbarRetrieval)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CpuScanRetrieval)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void print_analytical_sweep() {
  std::printf("\n=== Fig. 5 — analytical NeuroSim-lite sweep (22 nm) ===\n");
  std::printf("%-16s %12s %12s %12s | %12s %12s %12s\n", "#samples(x100)", "RRAM ns",
              "FeFET ns", "CPU ns", "RRAM pJ", "FeFET pJ", "CPU pJ");
  const auto rram = cim::rram_perf_22nm();
  const auto fefet = cim::fefet_perf_22nm();
  const auto cpu = cim::jetson_orin_cpu();
  const cim::CrossbarConfig cfg;
  double max_lat_ratio = 0.0, max_e_ratio = 0.0;
  for (double n100 : {2e2, 5e2, 1e3, 5e3, 1e4, 2e4, 5e4, 1e5}) {
    const auto n = static_cast<std::size_t>(n100 * 100.0);
    const auto r = cim_retrieval_cost(rram, cfg, n, kKeyLen);
    const auto f = cim_retrieval_cost(fefet, cfg, n, kKeyLen);
    const auto c = cpu_retrieval_cost(cpu, n, kKeyLen);
    std::printf("%-16.0f %12.0f %12.0f %12.0f | %12.3g %12.3g %12.3g\n", n100, r.latency_ns,
                f.latency_ns, c.latency_ns, r.energy_pj, f.energy_pj, c.energy_pj);
    max_lat_ratio = std::max(max_lat_ratio, c.latency_ns / f.latency_ns);
    max_e_ratio = std::max(max_e_ratio, c.energy_pj / f.energy_pj);
  }
  std::printf("\nMax CPU/NVCiM improvement in sweep: %.0fx latency, %.0fx energy\n",
              max_lat_ratio, max_e_ratio);
  std::printf("Paper reports: up to 120x latency, up to 60x energy vs Jetson Orin CPU.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_analytical_sweep();
  return 0;
}
