// Serving-engine throughput harness: requests/sec of the multi-tenant
// nvcim::serve::ServingEngine as a function of retrieval batch size and
// worker-thread count, an encode-bound scenario exercising the staged
// batched encode pipeline (cross-user fused autoencoder GEMMs) with a
// per-stage breakdown, and a microbench of batched vs per-query crossbar
// retrieval. Results are also emitted as machine-readable BENCH_serve.json
// so the perf trajectory accumulates across PRs.
//
// Deployments are synthetic (untrained autoencoder, random keys): the bench
// exercises the serving data path — encode, sharded crossbar search, decode,
// cache — not task accuracy. Scale via NVCIM_SERVE_REQUESTS / NVCIM_SERVE_USERS.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <vector>

#include "nvcim/serve/engine.hpp"

using namespace nvcim;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Knobs that shape where the per-request cost lands.
struct WorkloadConfig {
  std::size_t d_model = 16;
  std::size_t code_dim = 24;
  std::size_t n_virtual_tokens = 4;
  std::size_t ae_hidden = 64;
  std::size_t keys_per_user = 6;
  std::size_t crossbar_rows = 96;
  std::size_t crossbar_cols = 32;
};

struct Workload {
  data::LampTask task{data::lamp1_config()};
  WorkloadConfig wcfg;
  llm::TinyLM model;
  std::size_t n_users;
  /// One autoencoder shared by every user (a platform-provided encoder):
  /// the engine fuses the whole batch into one encode GEMM per pass.
  std::shared_ptr<const compress::Autoencoder> autoencoder;
  std::vector<std::pair<std::size_t, data::Sample>> requests;

  Workload(WorkloadConfig wc, std::size_t users, std::size_t n_requests)
      : wcfg(wc), model(make_model()), n_users(users) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = wcfg.d_model;
    acfg.code_dim = wcfg.code_dim;
    acfg.hidden_dim = wcfg.ae_hidden;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
    Rng rng(42);
    for (std::size_t i = 0; i < n_requests; ++i) {
      const std::size_t u = rng.uniform_index(n_users);
      requests.emplace_back(u, task.sample(rng.uniform_index(task.config().n_domains), rng));
    }
  }

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = wcfg.d_model;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 2 * wcfg.d_model;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    return llm::TinyLM(cfg, 7);
  }

  core::TrainedDeployment make_deployment(std::size_t user) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = wcfg.n_virtual_tokens;
    Rng rng(1000 + user);
    for (std::size_t k = 0; k < wcfg.keys_per_user; ++k) {
      d.keys.push_back(
          Matrix::rand_uniform(wcfg.n_virtual_tokens, wcfg.code_dim, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(
          Matrix::rand_uniform(wcfg.n_virtual_tokens, wcfg.code_dim, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig engine_config(std::size_t shards, std::size_t threads,
                                     std::size_t batch) const {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.queue_capacity = 128;
    cfg.cache_capacity = 48;
    cfg.crossbar.rows = wcfg.crossbar_rows;
    cfg.crossbar.cols = wcfg.crossbar_cols;
    cfg.variation = {nvm::fefet3(), 0.1};
    return cfg;
  }
};

double run_engine(Workload& w, std::size_t shards, std::size_t threads, std::size_t batch,
                  serve::StatsSnapshot* out_stats) {
  serve::ServingEngine engine(w.model, w.task, w.engine_config(shards, threads, batch));
  for (std::size_t u = 0; u < w.n_users; ++u)
    engine.add_deployment(u, w.make_deployment(u));
  engine.start();

  const double t0 = now_ms();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(w.requests.size());
  for (const auto& [u, q] : w.requests) futures.push_back(engine.submit(u, q));
  for (auto& f : futures) f.get();
  const double elapsed_ms = now_ms() - t0;
  if (out_stats != nullptr) *out_stats = engine.stats();
  engine.stop();
  return 1000.0 * static_cast<double>(w.requests.size()) / elapsed_ms;
}

void print_stages(const serve::StatsSnapshot& s) {
  const double total = s.encode_ms + s.retrieve_ms + s.decode_ms + s.classify_ms;
  std::printf("    stages: encode %7.1f ms (%4.1f%%) | retrieve %7.1f ms (%4.1f%%) | "
              "decode %6.1f ms (%4.1f%%) | classify %6.1f ms\n",
              s.encode_ms, 100.0 * s.encode_ms / total, s.retrieve_ms,
              100.0 * s.retrieve_ms / total, s.decode_ms, 100.0 * s.decode_ms / total,
              s.classify_ms);
}

void json_stages(FILE* f, const serve::StatsSnapshot& s) {
  std::fprintf(f,
               "{\"encode_ms\": %.2f, \"retrieve_ms\": %.2f, \"decode_ms\": %.2f, "
               "\"classify_ms\": %.2f}",
               s.encode_ms, s.retrieve_ms, s.decode_ms, s.classify_ms);
}

void bench_batched_vs_per_query(FILE* json) {
  std::printf("-- batched vs per-query crossbar retrieval "
              "(one CimRetriever, 64 keys, SSA) --\n");
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 96;
  cfg.crossbar.cols = 32;
  cfg.variation = {nvm::fefet3(), 0.1};
  retrieval::CimRetriever r(cfg);
  Rng rng(3);
  std::vector<Matrix> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
  r.store(keys, rng);

  const std::size_t n_queries = 128;
  std::vector<Matrix> queries;
  for (std::size_t i = 0; i < n_queries; ++i)
    queries.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));

  const double t0 = now_ms();
  for (const Matrix& q : queries) (void)r.retrieve(q);
  const double per_query_ms = now_ms() - t0;

  std::printf("  %-14s %10.1f ms  (%.0f q/s)\n", "per-query", per_query_ms,
              1000.0 * n_queries / per_query_ms);
  std::fprintf(json, "  \"retrieval_microbench\": {\"per_query_ms\": %.2f", per_query_ms);
  for (std::size_t batch : {8u, 16u, 32u}) {
    const double t1 = now_ms();
    for (std::size_t start = 0; start < n_queries; start += batch) {
      const std::size_t stop = std::min(start + batch, n_queries);
      std::vector<Matrix> chunk(queries.begin() + static_cast<long>(start),
                                queries.begin() + static_cast<long>(stop));
      (void)r.retrieve_batch(r.pack_queries(chunk));
    }
    const double batch_ms = now_ms() - t1;
    std::printf("  batch B=%-5zu %10.1f ms  (%.0f q/s, %.2fx per-query)\n", batch, batch_ms,
                1000.0 * n_queries / batch_ms, per_query_ms / batch_ms);
    std::fprintf(json, ", \"batch_%zu_ms\": %.2f", batch, batch_ms);
  }
  std::fprintf(json, "},\n");
}

/// Encode-bound scenario: a wide autoencoder (the paper's production shape —
/// hidden 256, code 48) and 8 virtual tokens put substantial per-request
/// encode work next to retrieval. The baseline is the engine's serial
/// reference path (retrieve_serial: per-request encode + per-query crossbar
/// search — bit-identical results, no batching), the same comparator the
/// batched-retrieval microbench uses; the staged pipeline runs on ONE worker
/// so the speedup isolates batching, not thread parallelism.
void bench_encode_bound(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 32;
  wc.code_dim = 48;
  wc.ae_hidden = 256;
  wc.n_virtual_tokens = 8;
  wc.keys_per_user = 6;
  wc.crossbar_rows = 128;
  wc.crossbar_cols = 48;
  Workload w(wc, n_users, n_requests);

  std::printf("\n-- encode-bound scenario (AE hidden 256, code 48, 8 virtual tokens; "
              "%zu users, %zu requests, 1 worker) --\n", n_users, n_requests);
  std::fprintf(json, "  \"encode_bound\": {\"users\": %zu, \"requests\": %zu, \"threads\": 1,\n",
               n_users, n_requests);

  // Serial reference: one request at a time through the per-query path.
  double serial_rps = 0.0;
  {
    serve::ServingEngine engine(w.model, w.task, w.engine_config(2, 1, 1));
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();  // builds the store; the lone worker stays idle
    // Two passes, keep the faster one: the first doubles as warmup, and a
    // faster serial baseline makes the reported speedup conservative.
    double serial_ms = 1e300;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = now_ms();
      for (const auto& [u, q] : w.requests) (void)engine.retrieve_serial(u, q);
      serial_ms = std::min(serial_ms, now_ms() - t0);
    }
    engine.stop();
    serial_rps = 1000.0 * static_cast<double>(w.requests.size()) / serial_ms;
    std::printf("  %8s %12s %10s %10s\n", "path", "req/s", "p50ms", "p95ms");
    std::printf("  %8s %12.0f %10s %10s\n", "serial", serial_rps, "-", "-");
    std::fprintf(json, "    \"serial_rps\": %.0f,\n", serial_rps);
  }

  serve::StatsSnapshot last{};
  double b16_speedup = 0.0;
  for (const std::size_t batch : {1u, 8u, 16u}) {
    // Best of two passes, symmetric with the serial baseline above.
    serve::StatsSnapshot s;
    double rps = 0.0;
    for (int pass = 0; pass < 2; ++pass) {
      serve::StatsSnapshot pass_stats;
      const double pass_rps = run_engine(w, /*shards=*/2, /*threads=*/1, batch, &pass_stats);
      if (pass_rps > rps) {
        rps = pass_rps;
        s = pass_stats;
      }
    }
    std::printf("  %8zu %12.0f %10.2f %10.2f   (%.2fx vs serial)\n", batch, rps,
                s.p50_latency_ms, s.p95_latency_ms, rps / serial_rps);
    print_stages(s);
    std::fprintf(json, "    \"b%zu_rps\": %.0f,\n", batch, rps);
    if (batch == 16) b16_speedup = rps / serial_rps;
    last = s;
  }
  std::fprintf(json, "    \"speedup_b16_vs_serial\": %.2f,\n    \"stages_b16\": ", b16_speedup);
  json_stages(json, last);
  std::fprintf(json, "\n  },\n");
}

}  // namespace

int main() {
  std::size_t n_requests = 256, n_users = 16;
  if (const char* e = std::getenv("NVCIM_SERVE_REQUESTS"))
    n_requests = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("NVCIM_SERVE_USERS")) n_users = std::strtoul(e, nullptr, 10);

  std::printf("================================================================\n");
  std::printf("bench_serve: multi-tenant serving engine throughput\n");
  std::printf("%zu users, %zu requests, 2 shards\n", n_users, n_requests);
  std::printf("================================================================\n");

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serve.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"serve\",\n  \"users\": %zu, \"requests\": %zu,\n",
               n_users, n_requests);

  bench_batched_vs_per_query(json);
  bench_encode_bound(json, n_requests, n_users);

  Workload w(WorkloadConfig{}, n_users, n_requests);
  std::printf("\n-- requests/sec vs batch size and thread count (default workload) --\n");
  std::printf("  %8s %8s %12s %10s %10s %10s\n", "threads", "batch", "req/s", "avgB", "p50ms",
              "p95ms");
  std::fprintf(json, "  \"grid\": [\n");
  bool first = true;
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t batch : {1u, 8u, 16u}) {
      serve::StatsSnapshot s;
      const double rps = run_engine(w, /*shards=*/2, threads, batch, &s);
      std::printf("  %8zu %8zu %12.0f %10.1f %10.2f %10.2f\n", threads, batch, rps,
                  s.avg_batch_size, s.p50_latency_ms, s.p95_latency_ms);
      std::fprintf(json, "%s    {\"threads\": %zu, \"batch\": %zu, \"rps\": %.0f}",
                   first ? "" : ",\n", threads, batch, rps);
      first = false;
    }
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\ncache: decoded-OVT LRU; per-stage timings in BENCH_serve.json; "
              "raise NVCIM_SERVE_REQUESTS for steadier numbers\n");
  return 0;
}
