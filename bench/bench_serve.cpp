// Serving-engine throughput harness: requests/sec of the multi-tenant
// nvcim::serve::ServingEngine as a function of retrieval batch size and
// worker-thread count, an encode-bound scenario exercising the staged
// batched encode pipeline (cross-user fused autoencoder GEMMs), a
// retrieval-bound scenario comparing the fused slice kernel + parallel
// per-shard fan-out against the PR 2 data path, a crossbar-kernel
// microbench, a fault-storm scrub/self-repair scenario, and a microbench
// of batched vs per-query retrieval. Results
// are also emitted as machine-readable BENCH_serve.json so the perf
// trajectory accumulates across PRs (CI gates regressions against it).
//
// Deployments are synthetic (untrained autoencoder, random keys): the bench
// exercises the serving data path — encode, sharded crossbar search, decode,
// cache — not task accuracy. Scale via NVCIM_SERVE_REQUESTS / NVCIM_SERVE_USERS.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "nvcim/serve/engine.hpp"

using namespace nvcim;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Knobs that shape where the per-request cost lands.
struct WorkloadConfig {
  std::size_t d_model = 16;
  std::size_t code_dim = 24;
  std::size_t n_virtual_tokens = 4;
  std::size_t ae_hidden = 64;
  std::size_t keys_per_user = 6;
  std::size_t crossbar_rows = 96;
  std::size_t crossbar_cols = 32;
  /// >0: each user's keys are noisy copies of this many separated
  /// prototypes (the paper's domain-clustered OVTs) instead of i.i.d.
  /// uniform — the structure the two-phase router exploits.
  std::size_t key_protos = 0;
};

struct Workload {
  data::LampTask task{data::lamp1_config()};
  WorkloadConfig wcfg;
  llm::TinyLM model;
  std::size_t n_users;
  /// One autoencoder shared by every user (a platform-provided encoder):
  /// the engine fuses the whole batch into one encode GEMM per pass.
  std::shared_ptr<const compress::Autoencoder> autoencoder;
  std::vector<std::pair<std::size_t, data::Sample>> requests;

  Workload(WorkloadConfig wc, std::size_t users, std::size_t n_requests)
      : wcfg(wc), model(make_model()), n_users(users) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = wcfg.d_model;
    acfg.code_dim = wcfg.code_dim;
    acfg.hidden_dim = wcfg.ae_hidden;
    autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
    Rng rng(42);
    for (std::size_t i = 0; i < n_requests; ++i) {
      const std::size_t u = rng.uniform_index(n_users);
      requests.emplace_back(u, task.sample(rng.uniform_index(task.config().n_domains), rng));
    }
  }

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = wcfg.d_model;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 2 * wcfg.d_model;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    return llm::TinyLM(cfg, 7);
  }

  /// `keys_mult` scales the key count (churn bench admits oversized hot
  /// tenants so the rebalancer actually has load skew to migrate away).
  core::TrainedDeployment make_deployment(std::size_t user, std::size_t keys_mult = 1) {
    core::TrainedDeployment d;
    d.autoencoder = autoencoder;
    d.n_virtual_tokens = wcfg.n_virtual_tokens;
    Rng rng(1000 + user);
    std::vector<Matrix> protos;
    for (std::size_t p = 0; p < wcfg.key_protos; ++p)
      protos.push_back(
          Matrix::rand_uniform(wcfg.n_virtual_tokens, wcfg.code_dim, rng, -1.0f, 1.0f));
    for (std::size_t k = 0; k < wcfg.keys_per_user * keys_mult; ++k) {
      if (protos.empty()) {
        d.keys.push_back(
            Matrix::rand_uniform(wcfg.n_virtual_tokens, wcfg.code_dim, rng, -1.0f, 1.0f));
      } else {
        Matrix key = protos[k % protos.size()];
        key += Matrix::randn(wcfg.n_virtual_tokens, wcfg.code_dim, rng, 0.08f);
        d.keys.push_back(key);
      }
      d.stored_codes.push_back(
          Matrix::rand_uniform(wcfg.n_virtual_tokens, wcfg.code_dim, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig engine_config(std::size_t shards, std::size_t threads,
                                     std::size_t batch) const {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.queue_capacity = 128;
    cfg.cache_capacity = 48;
    cfg.crossbar.rows = wcfg.crossbar_rows;
    cfg.crossbar.cols = wcfg.crossbar_cols;
    cfg.variation = {nvm::fefet3(), 0.1};
    return cfg;
  }
};

double run_engine_cfg(Workload& w, serve::ServingConfig cfg, serve::StatsSnapshot* out_stats) {
  serve::ServingEngine engine(w.model, w.task, cfg);
  for (std::size_t u = 0; u < w.n_users; ++u)
    engine.add_deployment(u, w.make_deployment(u));
  engine.start();

  const double t0 = now_ms();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(w.requests.size());
  for (const auto& [u, q] : w.requests) futures.push_back(engine.submit(u, q));
  for (auto& f : futures) f.get();
  const double elapsed_ms = now_ms() - t0;
  if (out_stats != nullptr) *out_stats = engine.stats();
  engine.stop();
  return 1000.0 * static_cast<double>(w.requests.size()) / elapsed_ms;
}

/// Best-of-two passes of one engine configuration (first pass warms caches;
/// keeping the faster run makes reported speedups conservative both ways).
double best_of_two(Workload& w, const serve::ServingConfig& cfg, serve::StatsSnapshot* stats) {
  double rps = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    serve::StatsSnapshot pass_stats;
    const double pass_rps = run_engine_cfg(w, cfg, &pass_stats);
    if (pass_rps > rps) {
      rps = pass_rps;
      if (stats != nullptr) *stats = pass_stats;
    }
  }
  return rps;
}

/// Closed-loop variant: requests are submitted in waves of `wave` and each
/// wave is awaited before the next, so exactly one batch is in flight. This
/// measures per-batch (latency-path) behaviour — the regime where the
/// retrieve stage's per-shard fan-out across idle workers shows up as
/// wall-clock, not just as throughput under saturation. Best of two passes
/// (stats/rps keep the faster pass); `indices`, when non-null, collects
/// every request's retrieved OVT index from the first pass (deterministic
/// across passes).
double waves_with_indices(Workload& w, const serve::ServingConfig& cfg, std::size_t wave,
                          serve::StatsSnapshot* stats, std::vector<std::size_t>* indices) {
  double rps = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    serve::ServingEngine engine(w.model, w.task, cfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();
    const double t0 = now_ms();
    std::vector<std::future<serve::Response>> futures;
    std::vector<std::size_t> got;
    got.reserve(w.requests.size());
    for (std::size_t start = 0; start < w.requests.size(); start += wave) {
      const std::size_t stop = std::min(start + wave, w.requests.size());
      futures.clear();
      for (std::size_t i = start; i < stop; ++i)
        futures.push_back(engine.submit(w.requests[i].first, w.requests[i].second));
      for (auto& f : futures) got.push_back(f.get().ovt_index);
    }
    const double elapsed_ms = now_ms() - t0;
    const double pass_rps = 1000.0 * static_cast<double>(w.requests.size()) / elapsed_ms;
    if (pass == 0 && indices != nullptr) *indices = std::move(got);
    if (pass_rps > rps) {
      rps = pass_rps;
      if (stats != nullptr) *stats = engine.stats();
    }
    engine.stop();
  }
  return rps;
}

/// Two-phase retrieval pruning sweep: a retrieval-bound, domain-clustered
/// workload served exactly (two-phase off — the PR 3 path) and then at
/// nprobe ∈ {all, 4, 2, 1}. Each point reports recall@1 against the exact
/// run's indices, the retrieve-stage speedup and the pruned fraction of
/// exact crossbar work. nprobe = all is bit-identical to the exact run by
/// construction (recall exactly 1.0) while still skipping other tenants'
/// key columns — the headline point is the fastest sweep entry with
/// recall@1 ≥ 0.95.
void bench_two_phase(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  wc.key_protos = 6;  // domain-clustered OVT keys
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  std::printf("\n-- two-phase retrieval sweep (48 keys/user, %zu prototypes, %zu users, "
              "%zu requests, %zu shards, B=%zu) --\n",
              wc.key_protos, n_users, n_requests, shards, batch);
  std::fprintf(json,
               "  \"two_phase\": {\"users\": %zu, \"requests\": %zu, \"shards\": %zu, "
               "\"threads\": %zu, \"batch\": %zu,\n",
               n_users, n_requests, shards, threads, batch);

  serve::ServingConfig common = w.engine_config(shards, threads, batch);
  common.min_batch = batch;
  common.batch_window_ms = 50.0;

  // Exact reference: the unmasked PR 3 data path.
  serve::StatsSnapshot es;
  std::vector<std::size_t> exact_idx;
  const double exact_rps = waves_with_indices(w, common, batch, &es, &exact_idx);
  std::printf("  %-12s %10.0f req/s   retrieve %8.1f ms   (recall 1.000 by definition)\n",
              "exact", exact_rps, es.retrieve_ms);
  std::fprintf(json, "    \"exact_rps\": %.0f, \"exact_retrieve_ms\": %.2f,\n", exact_rps,
               es.retrieve_ms);

  struct Point {
    std::size_t nprobe;
    double recall, retrieve_ms, speedup, pruned, rps, sampled;
  };
  std::vector<Point> points;
  std::fprintf(json, "    \"sweep\": [\n");
  for (const std::size_t nprobe : {0u, 4u, 2u, 1u}) {
    serve::ServingConfig cfg = common;
    cfg.two_phase.enabled = true;
    cfg.two_phase.nprobe = nprobe;
    // Production-default recall sampling stays on (every 16th routed pass
    // reruns exact scoring), so timings include the telemetry the knob
    // ships with; recall@1 below is computed exactly against the reference
    // run's indices, not sampled.
    serve::StatsSnapshot s;
    std::vector<std::size_t> idx;
    const double rps = waves_with_indices(w, cfg, batch, &s, &idx);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < exact_idx.size(); ++i)
      if (idx[i] == exact_idx[i]) ++matches;
    Point p;
    p.nprobe = nprobe;
    p.recall = static_cast<double>(matches) / static_cast<double>(exact_idx.size());
    p.retrieve_ms = s.retrieve_ms;
    p.speedup = es.retrieve_ms / s.retrieve_ms;
    p.pruned = s.pruned_fraction;
    p.rps = rps;
    p.sampled = s.sampled_recall_at1;
    points.push_back(p);
    std::printf("  nprobe=%-5s %10.0f req/s   retrieve %8.1f ms   recall@1 %.3f   "
                "stage %.2fx   pruned %4.1f%%\n",
                nprobe == 0 ? "all" : std::to_string(nprobe).c_str(), rps, s.retrieve_ms,
                p.recall, p.speedup, 100.0 * p.pruned);
    std::fprintf(json,
                 "%s      {\"nprobe\": %zu, \"recall\": %.4f, \"retrieve_ms\": %.2f, "
                 "\"pruned_fraction\": %.3f, \"rps\": %.0f}",
                 points.size() == 1 ? "" : ",\n", nprobe, p.recall, p.retrieve_ms, p.pruned,
                 rps);
  }
  std::fprintf(json, "\n    ],\n");

  // Headline: fastest sweep point that keeps recall@1 >= 0.95 (the CI gate
  // enforces the floor so the perf gate cannot reward silently lossy
  // retrieval).
  const Point* best = nullptr;
  for (const Point& p : points)
    if (p.recall >= 0.95 && (best == nullptr || p.speedup > best->speedup)) best = &p;
  if (best == nullptr) best = &points.front();  // nprobe = all: recall 1.0
  // The headline re-picks a compliant point every run, so its recall can
  // never fall below the CI floor by construction; the *default* nprobe's
  // recall is the falsifiable quality signal (the configuration users get
  // out of the box) — emitted separately and floored by the gate.
  const std::size_t default_nprobe = serve::TwoPhaseConfig{}.nprobe;
  double default_recall = points.front().recall;
  for (const Point& p : points)
    if (p.nprobe == default_nprobe) default_recall = p.recall;
  std::printf("  headline: nprobe=%s — retrieve stage %.2fx vs exact at recall@1 %.3f "
              "(%.0f%% of exact work pruned)\n",
              best->nprobe == 0 ? "all" : std::to_string(best->nprobe).c_str(), best->speedup,
              best->recall, 100.0 * best->pruned);
  std::fprintf(json,
               "    \"best_nprobe\": %zu, \"recall_at1\": %.4f, "
               "\"default_recall_at1\": %.4f,\n"
               "    \"retrieve_stage_speedup_b16\": %.2f, \"rps_speedup_b16\": %.2f,\n"
               "    \"pruned_fraction\": %.3f, \"sampled_recall\": %.4f\n  },\n",
               best->nprobe, best->recall, default_recall, best->speedup,
               best->rps / exact_rps, best->pruned, best->sampled);
}

/// Churn scenario: a steady admit/evict mix (plus periodic rebalance cycles)
/// riding on top of B=16 serving traffic, against the same engine serving
/// the same traffic with zero churn. Admissions run write-behind: admit
/// returns once the slot is staged, the column programming overlaps the
/// next wave of traffic as worker aux tasks, and the hot tenant takes over
/// serving one wave later (after a wait_admitted join that is usually a
/// no-op by then). Reports the p95 latency impact as a ratio (churn p95 /
/// steady p95, gate ceiling 1.25×) and the throughput collapse as
/// churn_slowdown = steady_rps / churn_rps (gate ceiling 5×; it was 6.3×
/// with synchronous caller-thread programming on a multi-core host, and a
/// single-core host floors at the programming/serving CPU ratio of
/// ~3.3-3.7× no matter how the work is scheduled). Lifecycle + two-phase are
/// on in BOTH passes, so the ratios isolate the churn operations, not the
/// subsystem's bookkeeping. Also times the cold store build with the
/// batched programming primitives against the column-at-a-time path — the
/// results are bit-identical, so build_speedup is pure programming-path
/// overhead.
void bench_churn(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  wc.key_protos = 6;  // clustered keys: admits exercise a real router refresh
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  std::printf("\n-- churn scenario (admit/evict mix + rebalance at B=%zu, %zu users, "
              "%zu requests, %zu shards) --\n",
              batch, n_users, n_requests, shards);
  std::fprintf(json,
               "  \"churn\": {\"users\": %zu, \"requests\": %zu, \"shards\": %zu, "
               "\"threads\": %zu, \"batch\": %zu,\n",
               n_users, n_requests, shards, threads, batch);

  serve::ServingConfig cfg = w.engine_config(shards, threads, batch);
  cfg.min_batch = batch;
  cfg.batch_window_ms = 50.0;
  cfg.lifecycle.enabled = true;
  cfg.lifecycle.write_behind = true;  // admissions program as worker aux tasks
  // The admit cadence may outrun programming on slow machines; never let
  // the measured loop block on the staged-admission bound.
  cfg.lifecycle.max_pending_admissions = 16;
  cfg.two_phase.enabled = true;       // router refresh is part of the admit cost

  // Cold-build timing: batched per-(subarray, tile) programming vs the
  // column-at-a-time path. Bit-identical stores; best of two per side.
  double build_per_column_ms = 1e300, build_batched_ms = 1e300;
  for (const bool batched : {false, true}) {
    serve::ServingConfig bcfg = cfg;
    bcfg.lifecycle.batched_programming = batched;
    double& best = batched ? build_batched_ms : build_per_column_ms;
    for (int pass = 0; pass < 2; ++pass) {
      serve::ServingEngine engine(w.model, w.task, bcfg);
      for (std::size_t u = 0; u < w.n_users; ++u)
        engine.add_deployment(u, w.make_deployment(u));
      const double t0 = now_ms();
      engine.start();  // builds the sharded store
      best = std::min(best, now_ms() - t0);
      engine.stop();
    }
  }
  const double build_speedup =
      build_batched_ms > 0.0 ? build_per_column_ms / build_batched_ms : 1.0;
  std::printf("  cold build: %.1f ms batched vs %.1f ms per-column (%.2fx)\n",
              build_batched_ms, build_per_column_ms, build_speedup);

  // `churn_every` = admit one new tenant per this many waves (write-behind,
  // overlapped with the wave's traffic); the following wave joins the
  // admission, evicts the previous churned tenant and redirects traffic to
  // the fresh one. Every 4th wave also runs a rebalance cycle.
  const auto run_pass = [&](bool churn, serve::StatsSnapshot* stats) {
    serve::ServingEngine engine(w.model, w.task, cfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    const std::size_t churn_every = 2;
    std::size_t wave_id = 0, churned = 0;
    std::size_t live_churn_user = npos;
    std::deque<std::size_t> pending_churn;  // staged, not yet taking traffic
    const double t0 = now_ms();
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t start = 0; start < w.requests.size(); start += batch) {
      if (churn && wave_id % churn_every == 0) {
        // Oversized "hot tenant" admits (2× keys) skew shard loads, so the
        // periodic rebalance cycles have real migrations to run. The admit
        // returns once the slot is staged; its column programming runs
        // behind the following waves' serving traffic.
        const std::size_t fresh = 100000 + churned++;
        engine.admit_user(fresh, w.make_deployment(fresh, /*keys_mult=*/2));
        pending_churn.push_back(fresh);
        if (churned % 2 == 0) (void)engine.rebalance();
      }
      if (churn && !pending_churn.empty() &&
          engine.store().user_live(pending_churn.front())) {
        // The write-behind programming settled behind earlier waves
        // (checked without blocking — traffic never stalls on an admission):
        // join the residual bookkeeping, retire the previous hot tenant and
        // hand the traffic slot to the fresh one.
        engine.wait_admitted(pending_churn.front());
        if (live_churn_user != npos) engine.evict_user(live_churn_user);
        live_churn_user = pending_churn.front();
        pending_churn.pop_front();
      }
      const std::size_t stop = std::min(start + batch, w.requests.size());
      futures.clear();
      for (std::size_t i = start; i < stop; ++i) {
        // The churned tenant serves live traffic too — it takes over the
        // first request of each wave, keeping every wave exactly `batch`
        // wide (a 17th submit would straggle behind the min_batch
        // coalescing window and the p95 would measure that stall, not the
        // churn operations).
        const bool redirect = churn && i == start && live_churn_user != npos;
        const std::size_t user = redirect ? live_churn_user : w.requests[i].first;
        futures.push_back(engine.submit(user, w.requests[i].second));
      }
      for (auto& f : futures) f.get();
      ++wave_id;
    }
    const double elapsed_ms = now_ms() - t0;
    *stats = engine.stats();
    engine.stop();
    return 1000.0 * static_cast<double>(stats->requests) / elapsed_ms;
  };

  // Best of two passes per mode (first doubles as warmup), symmetric, so the
  // impact ratio compares two equally-warm runs.
  serve::StatsSnapshot steady{}, churny{};
  double steady_rps = 0.0, churn_rps = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    serve::StatsSnapshot s1, s2;
    const double r1 = run_pass(false, &s1);
    const double r2 = run_pass(true, &s2);
    if (pass == 0 || s1.p95_latency_ms < steady.p95_latency_ms) {
      steady = s1;
      steady_rps = r1;
    }
    if (pass == 0 || s2.p95_latency_ms < churny.p95_latency_ms) {
      churny = s2;
      churn_rps = r2;
    }
  }

  const double impact =
      steady.p95_latency_ms > 0.0 ? churny.p95_latency_ms / steady.p95_latency_ms : 1.0;
  std::printf("  %-10s %10.0f req/s   p50 %7.2f ms   p95 %7.2f ms\n", "steady", steady_rps,
              steady.p50_latency_ms, steady.p95_latency_ms);
  std::printf("  %-10s %10.0f req/s   p50 %7.2f ms   p95 %7.2f ms   (p95 impact %.2fx)\n",
              "churn", churn_rps, churny.p50_latency_ms, churny.p95_latency_ms, impact);
  std::printf("  churn ops: %zu admits, %zu evictions, %zu migrations, %zu router "
              "refreshes, rebalance %.1f ms total\n",
              churny.users_admitted, churny.users_evicted, churny.migrations,
              churny.router_refreshes, churny.rebalance_ms);
  const double slowdown = churn_rps > 0.0 ? steady_rps / churn_rps : 1.0;
  std::printf("  write-behind: %zu programming batches, admission stage→live p50 %.2f ms "
              "p95 %.2f ms, slowdown %.2fx\n",
              churny.program_batches, churny.admission_p50_ms, churny.admission_p95_ms,
              slowdown);
  std::fprintf(json, "    \"steady_rps\": %.0f, \"churn_rps\": %.0f,\n", steady_rps, churn_rps);
  std::fprintf(json, "    \"steady_p95_ms\": %.3f, \"churn_p95_ms\": %.3f,\n",
               steady.p95_latency_ms, churny.p95_latency_ms);
  std::fprintf(json, "    \"steady_p99_latency_ms\": %.3f, \"churn_p99_latency_ms\": %.3f,\n",
               steady.p99_latency_ms, churny.p99_latency_ms);
  std::fprintf(json,
               "    \"admits\": %zu, \"evictions\": %zu, \"migrations\": %zu, "
               "\"router_refreshes\": %zu, \"rebalance_ms\": %.2f,\n",
               churny.users_admitted, churny.users_evicted, churny.migrations,
               churny.router_refreshes, churny.rebalance_ms);
  std::fprintf(json,
               "    \"program_batches\": %zu, \"admission_p50_ms\": %.3f, "
               "\"admission_p95_ms\": %.3f,\n",
               churny.program_batches, churny.admission_p50_ms, churny.admission_p95_ms);
  std::fprintf(json, "    \"build_ms\": %.1f, \"build_per_column_ms\": %.1f, "
               "\"build_speedup\": %.2f,\n",
               build_batched_ms, build_per_column_ms, build_speedup);
  std::fprintf(json, "    \"churn_p95_impact\": %.3f, \"churn_slowdown\": %.3f\n  },\n", impact,
               slowdown);
}

/// Observability-overhead microbench: the retrieval-bound B=16 steady
/// workload served with tracing off vs on (per-thread span rings + the
/// registry's histogram/counter recording run in both — tracing adds the
/// span writes). Interleaved best-of-three per side decorrelates machine
/// drift; the CI gate fails when obs_overhead_frac grows past its ceiling.
/// The tracing-on run also exports the artifacts CI uploads: a Chrome
/// trace (trace_serve.json, loadable in Perfetto) and a Prometheus text
/// dump (metrics_serve.prom).
void bench_obs(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  wc.key_protos = 6;
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  std::printf("\n-- observability overhead (tracing off vs on, steady B=%zu, %zu users, "
              "%zu requests, %zu shards) --\n",
              batch, n_users, n_requests, shards);

  serve::ServingConfig off_cfg = w.engine_config(shards, threads, batch);
  off_cfg.min_batch = batch;
  off_cfg.batch_window_ms = 50.0;
  serve::ServingConfig on_cfg = off_cfg;
  on_cfg.tracing.enabled = true;
  on_cfg.slow_request_ms = 1e6;  // exemplar check armed (branch cost), never firing
  // The full introspection plane rides the measured side: windows + SLO
  // evaluation always run in EngineStats, and the embedded HTTP server is up
  // on an ephemeral port — the overhead gate covers all of it, not just
  // tracing.
  on_cfg.introspection.enabled = true;

  // >0: after the export pass, keep the engine (and its HTTP server) alive
  // this long so an external scraper — CI's check_exposition.py --url — can
  // hit /metrics and /healthz on a live engine. The hold happens outside the
  // timed region.
  double http_hold_ms = 0.0;
  if (const char* e = std::getenv("NVCIM_SERVE_HTTP_HOLD_MS"))
    http_hold_ms = std::strtod(e, nullptr);

  std::size_t trace_events = 0, trace_dropped = 0;
  const auto run = [&](const serve::ServingConfig& cfg, bool export_artifacts,
                       serve::StatsSnapshot* stats) {
    serve::ServingEngine engine(w.model, w.task, cfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();
    const double t0 = now_ms();
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t start = 0; start < w.requests.size(); start += batch) {
      const std::size_t stop = std::min(start + batch, w.requests.size());
      futures.clear();
      for (std::size_t i = start; i < stop; ++i)
        futures.push_back(engine.submit(w.requests[i].first, w.requests[i].second));
      for (auto& f : futures) f.get();
    }
    const double elapsed_ms = now_ms() - t0;
    *stats = engine.stats();
    if (export_artifacts) {
      // Quiesce before dumping the reference exposition: the batch worker
      // records stage totals just after fulfilling the last futures.
      std::string text = engine.metrics().prometheus_text();
      for (int i = 0; i < 100; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::string again = engine.metrics().prometheus_text();
        if (again == text) break;
        text = std::move(again);
      }
      {
        std::ofstream prom("metrics_serve.prom");
        prom << text;
      }
      const std::uint16_t port = engine.introspection_port();
      if (port != 0) {
        // Published last: a scraper that waits for this file is guaranteed
        // the reference dump above already exists.
        std::ofstream url("introspection_url.txt");
        url << "http://127.0.0.1:" << port << "\n";
      }
      if (http_hold_ms > 0.0 && port != 0) {
        std::printf("  holding introspection server at 127.0.0.1:%u for %.0f ms "
                    "(introspection_url.txt)\n",
                    static_cast<unsigned>(port), http_hold_ms);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(static_cast<long>(http_hold_ms)));
      }
    }
    engine.stop();  // quiesce the workers before reading the trace rings
    if (export_artifacts) {
      trace_events = engine.tracer().events().size();
      trace_dropped = static_cast<std::size_t>(engine.tracer().dropped());
      engine.tracer().write_chrome_trace_file("trace_serve.json");
    }
    return 1000.0 * static_cast<double>(w.requests.size()) / elapsed_ms;
  };

  double off_rps = 0.0, on_rps = 0.0;
  serve::StatsSnapshot off_stats{}, on_stats{};
  for (int pass = 0; pass < 3; ++pass) {
    serve::StatsSnapshot s1, s2;
    const double r1 = run(off_cfg, false, &s1);
    const double r2 = run(on_cfg, /*export_artifacts=*/pass == 2, &s2);
    if (r1 > off_rps) {
      off_rps = r1;
      off_stats = s1;
    }
    if (r2 > on_rps) {
      on_rps = r2;
      on_stats = s2;
    }
  }

  const double overhead = std::max(0.0, 1.0 - on_rps / off_rps);
  std::printf("  %-12s %10.0f req/s   p50 %7.2f ms   p99 %7.2f ms\n", "tracing off",
              off_rps, off_stats.p50_latency_ms, off_stats.p99_latency_ms);
  std::printf("  %-12s %10.0f req/s   p50 %7.2f ms   p99 %7.2f ms   (overhead %.2f%%)\n",
              "tracing on", on_rps, on_stats.p50_latency_ms, on_stats.p99_latency_ms,
              100.0 * overhead);
  std::printf("  trace: %zu events (%zu dropped) -> trace_serve.json; metrics -> "
              "metrics_serve.prom\n",
              trace_events, trace_dropped);
  std::fprintf(json,
               "  \"obs\": {\"users\": %zu, \"requests\": %zu, \"shards\": %zu, "
               "\"threads\": %zu, \"batch\": %zu,\n",
               n_users, n_requests, shards, threads, batch);
  std::fprintf(json, "    \"tracing_off_rps\": %.0f, \"tracing_on_rps\": %.0f,\n", off_rps,
               on_rps);
  std::fprintf(json, "    \"tracing_on_p99_latency_ms\": %.3f,\n", on_stats.p99_latency_ms);
  std::fprintf(json, "    \"trace_events\": %zu, \"trace_dropped\": %zu,\n", trace_events,
               trace_dropped);
  std::fprintf(json, "    \"obs_overhead_frac\": %.4f\n  },\n", overhead);
}

/// SLO scenario (PR 8 async lifecycle): a Zipf-skewed open-loop producer — a
/// hot tenant takes ~80% of the traffic, a tail of mid tenants the rest, and
/// half of it carries (generous) deadlines — keeps a deep backlog queued
/// while a cold tenant probes with closed-loop waves of one full batch.
/// Cold-tenant p99 is measured three ways: alone on an idle engine
/// (uncontended), under the DRR scheduler, and under the legacy FIFO order.
/// The gated signals are same-run ratios, hardware-portable by construction:
///
///   * fairness_impact = drr_cold_p99 / uncontended_cold_p99 — the fairness
///     guarantee the scheduler ships: a saturating hot tenant may not push a
///     cold tenant's tail past 2x its uncontended tail (absolute ceiling;
///     the FIFO baseline is recorded for contrast — there the cold wave
///     queues behind the entire backlog).
///   * deadline_miss_frac = (expired + late) / deadline-carrying requests
///     in the DRR run. Deadlines are sized to be comfortably meetable, so
///     any nonzero drift means deadline-aware dequeue (urgency-sorted
///     tenant queues + EDF pull) rotted.
void bench_slo(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  wc.key_protos = 6;
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  /// The cold tenant is LIGHT by construction: sub-batch waves of one DRR
  /// quantum. Alone on the engine its waves never reach min_batch, so its
  /// uncontended latency is coalescing-window-bound — that IS an isolated
  /// light tenant's real latency. Under saturation batches form instantly
  /// and DRR bounds the cold wave's queueing to a batch or two, so the
  /// fairness ratio stays under the 2x gate; FIFO instead queues the wave
  /// behind the entire hot backlog and blows through it.
  const std::size_t wave = 4;
  const std::size_t waves = 10, warmup_waves = 2;
  const std::size_t cold = n_users - 1;  // gets no open-loop traffic
  /// Producer keeps this many hot requests outstanding: a backlog dozens of
  /// batches deep that still leaves queue-capacity headroom, so the cold
  /// probe's submits never block at admission (fairness must be decided by
  /// the scheduler, not by who wins the capacity race).
  const std::size_t hot_outstanding = 768;
  const double deadline_ms = 750.0;

  std::printf("\n-- SLO scenario (hot tenant saturating, cold tenant probing, "
              "B=%zu, %zu users, %zu threads) --\n",
              batch, n_users, threads);

  serve::ServingConfig cfg = w.engine_config(shards, threads, batch);
  cfg.min_batch = batch;
  cfg.batch_window_ms = 50.0;
  cfg.queue_capacity = 1024;

  // Closed-loop cold probe: sub-batch waves, each awaited before the next;
  // p99 of the measured waves' end-to-end latencies.
  const auto probe_cold = [&](serve::ServingEngine& engine) {
    std::vector<double> lat;
    for (std::size_t v = 0; v < warmup_waves + waves; ++v) {
      std::vector<serve::RequestHandle> hs;
      hs.reserve(wave);
      for (std::size_t i = 0; i < wave; ++i)
        hs.push_back(engine.submit(serve::Request{cold, w.requests[i].second}));
      for (auto& h : hs) {
        const serve::Response r = h.get();
        if (v >= warmup_waves) lat.push_back(r.latency_ms);
      }
    }
    std::sort(lat.begin(), lat.end());
    return lat[(99 * lat.size() + 99) / 100 - 1];
  };

  double uncontended_p99 = 0.0;
  {
    serve::ServingEngine engine(w.model, w.task, cfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();
    uncontended_p99 = probe_cold(engine);
    engine.stop();
  }

  struct SloResult {
    double cold_p99 = 0.0;
    std::size_t deadline_total = 0;
    serve::StatsSnapshot stats;
  };
  const auto run_contended = [&](serve::SchedPolicy policy) {
    serve::ServingConfig ccfg = cfg;
    ccfg.scheduler.policy = policy;
    serve::ServingEngine engine(w.model, w.task, ccfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();

    std::atomic<bool> stop_flag{false};
    std::atomic<std::size_t> outstanding{0};
    std::size_t deadline_total = 0;
    std::thread hot([&] {
      std::size_t i = 0;
      while (!stop_flag.load(std::memory_order_relaxed)) {
        if (outstanding.load(std::memory_order_relaxed) >= hot_outstanding) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        // Zipf-ish skew: 80% hot tenant 0, the rest across the mid tenants.
        const std::size_t user =
            (i % 5 != 0) ? 0 : 1 + (i / 5) % std::max<std::size_t>(1, n_users - 2);
        serve::SubmitOptions opts;
        if (i % 2 == 0) {
          opts.deadline_ms = deadline_ms;
          ++deadline_total;
        }
        opts.on_complete = [&outstanding](const serve::Response&, std::exception_ptr) {
          outstanding.fetch_sub(1, std::memory_order_relaxed);
        };
        outstanding.fetch_add(1, std::memory_order_relaxed);
        (void)engine.submit(serve::Request{user, w.requests[i % w.requests.size()].second},
                            std::move(opts));
        ++i;
      }
    });
    // Probe only once the backlog is actually deep (bounded wait: a machine
    // that serves faster than the producer submits simply probes early).
    const double t0 = now_ms();
    while (outstanding.load(std::memory_order_relaxed) < hot_outstanding * 3 / 4 &&
           now_ms() - t0 < 2000.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));

    SloResult r;
    r.cold_p99 = probe_cold(engine);
    stop_flag.store(true);
    hot.join();
    // Drain the backlog so every hot request has settled (served or expired)
    // before the accounting snapshot.
    while (outstanding.load(std::memory_order_relaxed) > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    r.deadline_total = deadline_total;
    r.stats = engine.stats();
    engine.stop();
    return r;
  };

  const SloResult drr = run_contended(serve::SchedPolicy::Drr);
  const SloResult fifo = run_contended(serve::SchedPolicy::Fifo);

  const double fairness = uncontended_p99 > 0.0 ? drr.cold_p99 / uncontended_p99 : 1.0;
  const double fifo_ratio = uncontended_p99 > 0.0 ? fifo.cold_p99 / uncontended_p99 : 1.0;
  const double miss_frac =
      drr.deadline_total > 0
          ? static_cast<double>(drr.stats.expired_requests + drr.stats.deadline_missed) /
                static_cast<double>(drr.deadline_total)
          : 0.0;
  std::printf("  cold p99: %7.2f ms uncontended | %7.2f ms DRR (%.2fx) | "
              "%7.2f ms FIFO (%.2fx)\n",
              uncontended_p99, drr.cold_p99, fairness, fifo.cold_p99, fifo_ratio);
  std::printf("  deadlines (DRR run): %zu carried, %zu expired, %zu late -> miss frac %.4f\n",
              drr.deadline_total, drr.stats.expired_requests, drr.stats.deadline_missed,
              miss_frac);
  std::printf("  queue waits (DRR run): p50 %.2f ms p95 %.2f ms; served %zu hot+cold\n",
              drr.stats.queue_wait_p50_ms, drr.stats.queue_wait_p95_ms, drr.stats.requests);

  std::fprintf(json,
               "  \"slo\": {\"users\": %zu, \"threads\": %zu, \"batch\": %zu, "
               "\"queue_capacity\": %zu, \"waves\": %zu,\n",
               n_users, threads, batch, cfg.queue_capacity, waves);
  std::fprintf(json, "    \"uncontended_cold_p99_ms\": %.3f, \"drr_cold_p99_ms\": %.3f, "
               "\"fifo_cold_p99_ms\": %.3f,\n",
               uncontended_p99, drr.cold_p99, fifo.cold_p99);
  std::fprintf(json, "    \"deadline_total\": %zu, \"expired\": %zu, \"late\": %zu,\n",
               drr.deadline_total, drr.stats.expired_requests, drr.stats.deadline_missed);
  std::fprintf(json, "    \"fifo_fairness_ratio\": %.3f,\n", fifo_ratio);
  std::fprintf(json, "    \"fairness_impact\": %.3f, \"deadline_miss_frac\": %.4f\n  },\n",
               fairness, miss_frac);
}

/// Fault-storm scenario (device-fault tolerance): the retrieval-bound
/// workload served through an injected fault storm — multiplicative
/// conductance drift across the whole fleet plus hard-stuck columns in the
/// first tenant slot of every shard — then scrubbed and self-repaired.
/// Three phases on one engine isolate retrieval quality: a pristine
/// reference pass records every request's retrieved index, the faulted pass
/// replays the same requests against the degraded store
/// (faulted_recall_at1, gated floor 0.90 — serving degrades gracefully, it
/// does not collapse), and a post-repair pass measures how much quality the
/// scrub brings back (drift is re-programmed in place bit-identically;
/// stuck columns are repaired by migrating their tenant to fresh columns).
/// A separate A/B pair measures the serving-tail cost of repair itself:
/// the same workload steady vs with the background scrubber aggressively
/// probing + repairing the storm under live traffic. fault_impact =
/// scrubbed p95 / steady p95 is a same-run ratio (hardware-portable,
/// lower-is-better, gated like the churn impact ratio).
void bench_faults(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  wc.key_protos = 6;
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  std::printf("\n-- fault-storm scenario (drift + stuck columns, scrub & self-repair, "
              "B=%zu, %zu users, %zu requests, %zu shards) --\n",
              batch, n_users, n_requests, shards);
  std::fprintf(json,
               "  \"faults\": {\"users\": %zu, \"requests\": %zu, \"shards\": %zu, "
               "\"threads\": %zu, \"batch\": %zu,\n",
               n_users, n_requests, shards, threads, batch);

  serve::ServingConfig cfg = w.engine_config(shards, threads, batch);
  cfg.min_batch = batch;
  cfg.batch_window_ms = 50.0;
  cfg.lifecycle.enabled = true;  // repair programs the mutable store

  // Seeded storm: fleet-wide drift (every occupied column deviates from its
  // pristine shadow) plus a few hard-stuck columns per shard. Columns
  // 0..keys-1 of each shard belong to its first tenant whenever the shard
  // has one, so the stuck injections always hit occupied columns.
  const auto inject_storm = [&](serve::ShardedOvtStore& store) {
    store.set_drift_rate(0.04);
    store.advance_age(2);
    const std::size_t stuck_cols[] = {1, 13, 29, 41};
    for (std::size_t s = 0; s < store.n_shards(); ++s)
      for (std::size_t i = 0; i < 4; ++i)
        store.inject_column_fault(s, stuck_cols[i],
                                  i % 2 == 0 ? nvm::FaultKind::StuckAtOff
                                             : nvm::FaultKind::StuckAtOn,
                                  /*n_cells=*/8, /*seed=*/911 + 31 * s + i);
  };

  const auto serve_waves = [&](serve::ServingEngine& engine, std::vector<std::size_t>* idx) {
    if (idx != nullptr) idx->clear();
    const double t0 = now_ms();
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t start = 0; start < w.requests.size(); start += batch) {
      const std::size_t stop = std::min(start + batch, w.requests.size());
      futures.clear();
      for (std::size_t i = start; i < stop; ++i)
        futures.push_back(engine.submit(w.requests[i].first, w.requests[i].second));
      for (auto& f : futures) {
        const serve::Response r = f.get();
        if (idx != nullptr) idx->push_back(r.ovt_index);
      }
    }
    return 1000.0 * static_cast<double>(w.requests.size()) / (now_ms() - t0);
  };

  // Recall vs the pristine reference, optionally restricted to requests
  // whose user is NOT in `exclude` (migrated tenants re-program with fresh
  // noise streams, which legitimately re-ranks near-tie keys — their recall
  // is reported separately from the bit-identical in-place repairs).
  const auto recall_vs = [&](const std::vector<std::size_t>& got,
                             const std::vector<std::size_t>& ref,
                             const std::vector<std::size_t>* exclude) {
    std::size_t matches = 0, counted = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (exclude != nullptr &&
          std::find(exclude->begin(), exclude->end(), w.requests[i].first) != exclude->end())
        continue;
      ++counted;
      if (got[i] == ref[i]) ++matches;
    }
    return counted == 0 ? 1.0 : static_cast<double>(matches) / static_cast<double>(counted);
  };

  // Phase pass: pristine reference -> storm -> faulted replay -> manual
  // fleet scrub (repair in place + migrate stuck) -> repaired replay.
  double faulted_recall = 0.0, recovered_recall = 0.0, repair_total_ms = 0.0;
  bool verified_clean = false;
  serve::ScrubOutcome storm_outcome;
  serve::StatsSnapshot repair_stats;
  {
    serve::ServingEngine engine(w.model, w.task, cfg);
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();
    std::vector<std::size_t> exact_idx, faulted_idx, repaired_idx;
    (void)serve_waves(engine, &exact_idx);  // doubles as warmup
    inject_storm(engine.store_mutable());
    (void)serve_waves(engine, &faulted_idx);
    faulted_recall = recall_vs(faulted_idx, exact_idx, nullptr);
    const double t0 = now_ms();
    storm_outcome = engine.scrub_now();
    const serve::ScrubOutcome verify = engine.scrub_now();
    repair_total_ms = now_ms() - t0;
    verified_clean = verify.columns_degraded == 0;
    (void)serve_waves(engine, &repaired_idx);
    recovered_recall = recall_vs(repaired_idx, exact_idx, &storm_outcome.migrated_users);
    repair_stats = engine.stats();
    engine.stop();
  }
  std::printf("  storm: %zu columns degraded -> %zu repaired in place, %zu stuck "
              "(%zu tenants migrated), verify pass %s\n",
              storm_outcome.columns_degraded, storm_outcome.columns_repaired,
              storm_outcome.columns_stuck, storm_outcome.migrated_users.size(),
              verified_clean ? "clean" : "STILL DEGRADED");
  std::printf("  recall@1 vs pristine: %.3f faulted -> %.3f after in-place repair "
              "(migrated tenants excluded); repair total %.1f ms "
              "(per-subarray p50 %.2f ms p95 %.2f ms)\n",
              faulted_recall, recovered_recall, repair_total_ms,
              repair_stats.repair_p50_ms, repair_stats.repair_p95_ms);

  // Impact pass: steady serving vs serving while the background scrubber
  // probes and repairs the same storm under live traffic. Best-of-two per
  // side (first pass doubles as warmup), symmetric, keep the lower p95.
  serve::ServingConfig scrub_cfg = cfg;
  scrub_cfg.scrubber.enabled = true;
  scrub_cfg.scrubber.interval_ms = 2.0;
  scrub_cfg.scrubber.subarrays_per_round = 1;

  double steady_rps = 0.0, scrub_rps = 0.0;
  serve::StatsSnapshot steady, scrubbed;
  for (int pass = 0; pass < 2; ++pass) {
    {
      serve::ServingEngine engine(w.model, w.task, cfg);
      for (std::size_t u = 0; u < w.n_users; ++u)
        engine.add_deployment(u, w.make_deployment(u));
      engine.start();
      const double rps = serve_waves(engine, nullptr);
      const serve::StatsSnapshot s = engine.stats();
      engine.stop();
      if (pass == 0 || s.p95_latency_ms < steady.p95_latency_ms) {
        steady = s;
        steady_rps = rps;
      }
    }
    {
      serve::ServingEngine engine(w.model, w.task, scrub_cfg);
      for (std::size_t u = 0; u < w.n_users; ++u)
        engine.add_deployment(u, w.make_deployment(u));
      engine.start();
      inject_storm(engine.store_mutable());
      const double rps = serve_waves(engine, nullptr);
      const serve::StatsSnapshot s = engine.stats();
      engine.stop();
      if (pass == 0 || s.p95_latency_ms < scrubbed.p95_latency_ms) {
        scrubbed = s;
        scrub_rps = rps;
      }
    }
  }
  const double impact =
      steady.p95_latency_ms > 0.0 ? scrubbed.p95_latency_ms / steady.p95_latency_ms : 1.0;
  std::printf("  %-10s %10.0f req/s   p50 %7.2f ms   p95 %7.2f ms\n", "steady", steady_rps,
              steady.p50_latency_ms, steady.p95_latency_ms);
  std::printf("  %-10s %10.0f req/s   p50 %7.2f ms   p95 %7.2f ms   (p95 impact %.2fx)\n",
              "scrubbing", scrub_rps, scrubbed.p50_latency_ms, scrubbed.p95_latency_ms,
              impact);
  std::printf("  background scrub: %zu passes, %zu columns probed, %zu repaired, "
              "%zu stuck, %zu degraded responses flagged\n",
              scrubbed.scrub_passes, scrubbed.scrub_columns_probed, scrubbed.columns_repaired,
              scrubbed.columns_stuck, scrubbed.degraded_responses);

  std::fprintf(json, "    \"faulted_recall_at1\": %.4f, \"recovered_recall_at1\": %.4f,\n",
               faulted_recall, recovered_recall);
  std::fprintf(json,
               "    \"columns_degraded\": %zu, \"columns_repaired\": %zu, "
               "\"columns_stuck\": %zu, \"tenants_migrated\": %zu,\n",
               storm_outcome.columns_degraded, storm_outcome.columns_repaired,
               storm_outcome.columns_stuck, storm_outcome.migrated_users.size());
  std::fprintf(json,
               "    \"repair_total_ms\": %.2f, \"repair_p50_ms\": %.3f, "
               "\"repair_p95_ms\": %.3f,\n",
               repair_total_ms, repair_stats.repair_p50_ms, repair_stats.repair_p95_ms);
  std::fprintf(json, "    \"steady_rps\": %.0f, \"scrub_rps\": %.0f,\n", steady_rps, scrub_rps);
  std::fprintf(json, "    \"steady_p95_ms\": %.3f, \"scrub_p95_ms\": %.3f,\n",
               steady.p95_latency_ms, scrubbed.p95_latency_ms);
  std::fprintf(json, "    \"scrub_passes\": %zu, \"degraded_responses\": %zu,\n",
               scrubbed.scrub_passes, scrubbed.degraded_responses);
  std::fprintf(json, "    \"fault_impact\": %.3f\n  },\n", impact);
}

double run_engine(Workload& w, std::size_t shards, std::size_t threads, std::size_t batch,
                  serve::StatsSnapshot* out_stats) {
  return run_engine_cfg(w, w.engine_config(shards, threads, batch), out_stats);
}

void print_stages(const serve::StatsSnapshot& s) {
  const double total = s.encode_ms + s.retrieve_ms + s.decode_ms + s.classify_ms;
  std::printf("    stages: encode %7.1f ms (%4.1f%%) | retrieve %7.1f ms (%4.1f%%) | "
              "decode %6.1f ms (%4.1f%%) | classify %6.1f ms\n",
              s.encode_ms, 100.0 * s.encode_ms / total, s.retrieve_ms,
              100.0 * s.retrieve_ms / total, s.decode_ms, 100.0 * s.decode_ms / total,
              s.classify_ms);
}

void json_stages(FILE* f, const serve::StatsSnapshot& s) {
  std::fprintf(f,
               "{\"encode_ms\": %.2f, \"retrieve_ms\": %.2f, \"decode_ms\": %.2f, "
               "\"classify_ms\": %.2f}",
               s.encode_ms, s.retrieve_ms, s.decode_ms, s.classify_ms);
}

void bench_batched_vs_per_query(FILE* json) {
  std::printf("-- batched vs per-query crossbar retrieval "
              "(one CimRetriever, 64 keys, SSA) --\n");
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 96;
  cfg.crossbar.cols = 32;
  cfg.variation = {nvm::fefet3(), 0.1};
  retrieval::CimRetriever r(cfg);
  Rng rng(3);
  std::vector<Matrix> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
  r.store(keys, rng);

  const std::size_t n_queries = 128;
  std::vector<Matrix> queries;
  for (std::size_t i = 0; i < n_queries; ++i)
    queries.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));

  const double t0 = now_ms();
  for (const Matrix& q : queries) (void)r.retrieve(q);
  const double per_query_ms = now_ms() - t0;

  std::printf("  %-14s %10.1f ms  (%.0f q/s)\n", "per-query", per_query_ms,
              1000.0 * n_queries / per_query_ms);
  std::fprintf(json, "  \"retrieval_microbench\": {\"per_query_ms\": %.2f", per_query_ms);
  for (std::size_t batch : {8u, 16u, 32u}) {
    const double t1 = now_ms();
    for (std::size_t start = 0; start < n_queries; start += batch) {
      const std::size_t stop = std::min(start + batch, n_queries);
      std::vector<Matrix> chunk(queries.begin() + static_cast<long>(start),
                                queries.begin() + static_cast<long>(stop));
      (void)r.retrieve_batch(r.pack_queries(chunk));
    }
    const double batch_ms = now_ms() - t1;
    std::printf("  batch B=%-5zu %10.1f ms  (%.0f q/s, %.2fx per-query)\n", batch, batch_ms,
                1000.0 * n_queries / batch_ms, per_query_ms / batch_ms);
    std::fprintf(json, ", \"batch_%zu_ms\": %.2f", batch, batch_ms);
  }
  std::fprintf(json, "},\n");
}

/// Microbench of the crossbar MVM kernels on one programmed subarray: the
/// retained legacy two-plane reference kernel (PR 2's matvec_batch) vs the
/// fused interleaved slice kernel, exact and FastAccumulate. Same inputs,
/// B=16 — the serving engine's retrieval batch shape.
void bench_kernel(FILE* json) {
  std::printf("\n-- crossbar slice-kernel microbench (384x128, int16, B=16) --\n");
  cim::CrossbarConfig base;  // paper-default subarray
  Rng wr(5);
  Matrix w(base.rows, base.cols);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at_flat(i) = static_cast<float>(static_cast<int>(wr.uniform_index(60001)) - 30000);
  Rng qr(6);
  const Matrix x = Matrix::randn(16, base.rows, qr);

  const int reps = 8;
  auto time_kernel = [&](cim::CrossbarConfig cfg) {
    cim::Crossbar xb(cfg);
    Rng pr(7);  // identical programming stream for every variant
    xb.program(w, {nvm::fefet3(), 0.1}, pr);
    (void)xb.matvec_batch(x);  // warmup
    const double t0 = now_ms();
    for (int i = 0; i < reps; ++i) (void)xb.matvec_batch(x);
    return (now_ms() - t0) / reps;
  };

  cim::CrossbarConfig ref_cfg = base;
  ref_cfg.reference_kernel = true;
  cim::CrossbarConfig fast_cfg = base;
  fast_cfg.fast_accumulate = true;

  const double ref_ms = time_kernel(ref_cfg);
  const double fused_ms = time_kernel(base);
  const double fast_ms = time_kernel(fast_cfg);
  std::printf("  %-22s %8.2f ms/batch\n", "reference (PR2)", ref_ms);
  std::printf("  %-22s %8.2f ms/batch  (%.2fx)\n", "fused exact", fused_ms, ref_ms / fused_ms);
  std::printf("  %-22s %8.2f ms/batch  (%.2fx)\n", "fused fast-accumulate", fast_ms,
              ref_ms / fast_ms);
  std::fprintf(json,
               "  \"kernel_microbench\": {\"reference_ms\": %.3f, \"fused_ms\": %.3f, "
               "\"fast_ms\": %.3f, \"fused_speedup\": %.2f, \"fast_speedup\": %.2f},\n",
               ref_ms, fused_ms, fast_ms, ref_ms / fused_ms, ref_ms / fast_ms);
}

/// Retrieval-bound scenario: 48 keys per user over 4 shards makes the
/// crossbar search dominate per-request cost (the regime PR 2 left the
/// engine in). The baseline runs PR 2's data path — legacy reference kernel
/// plus the serial shard loop — against the same workload; the new path
/// fuses the slice kernel and fans per-shard retrieval out across the worker
/// pool. Results are bit-identical between the two (property-tested), so
/// the speedup is pure wall-clock.
void bench_retrieval_bound(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 16;
  wc.code_dim = 24;
  wc.n_virtual_tokens = 4;
  wc.ae_hidden = 32;
  wc.keys_per_user = 48;
  wc.crossbar_rows = 384;  // the paper's subarray geometry
  wc.crossbar_cols = 128;
  Workload w(wc, n_users, n_requests);

  const std::size_t shards = 4, threads = 4, batch = 16;
  std::printf("\n-- retrieval-bound scenario (48 keys/user, %zu users, %zu requests, "
              "%zu shards, %zu workers, B=%zu) --\n",
              n_users, n_requests, shards, threads, batch);
  std::fprintf(json,
               "  \"retrieval_bound\": {\"users\": %zu, \"requests\": %zu, \"shards\": %zu, "
               "\"threads\": %zu, \"batch\": %zu,\n",
               n_users, n_requests, shards, threads, batch);

  // All variants coalesce full B-wide batches (min_batch) so every batch
  // spans the shard set and the comparison isolates the retrieve stage, not
  // batch-formation luck. Closed-loop waves of B keep one batch in flight —
  // the latency regime, where fanned-out shards land on idle workers.
  serve::ServingConfig common = w.engine_config(shards, threads, batch);
  common.min_batch = batch;
  common.batch_window_ms = 50.0;

  // PR 2 baseline: legacy kernel, serial shard loop.
  serve::ServingConfig baseline = common;
  baseline.crossbar.reference_kernel = true;
  baseline.parallel_retrieval = false;
  serve::StatsSnapshot bs;
  const double baseline_rps = waves_with_indices(w, baseline, batch, &bs, nullptr);

  // New path: fused kernel + parallel per-shard fan-out.
  serve::StatsSnapshot ns;
  const double new_rps = waves_with_indices(w, common, batch, &ns, nullptr);

  // Opt-in FastAccumulate on top (approximate scores, exact-path-validated).
  serve::ServingConfig fastc = common;
  fastc.crossbar.fast_accumulate = true;
  serve::StatsSnapshot fs;
  const double fast_rps = waves_with_indices(w, fastc, batch, &fs, nullptr);

  const double retrieve_speedup = bs.retrieve_ms / ns.retrieve_ms;
  std::printf("  %-26s %10.0f req/s   retrieve %8.1f ms\n", "PR2 baseline (serial)",
              baseline_rps, bs.retrieve_ms);
  std::printf("  %-26s %10.0f req/s   retrieve %8.1f ms  (stage %.2fx, rps %.2fx)\n",
              "fused + parallel shards", new_rps, ns.retrieve_ms, retrieve_speedup,
              new_rps / baseline_rps);
  std::printf("  %-26s %10.0f req/s   retrieve %8.1f ms  (stage %.2fx)\n",
              "    + fast-accumulate", fast_rps, fs.retrieve_ms,
              bs.retrieve_ms / fs.retrieve_ms);
  print_stages(ns);
  std::printf("    per-shard retrieve ms:");
  for (std::size_t s = 0; s < ns.shard_retrieve_ms.size(); ++s)
    std::printf(" [%zu] %.1f", s, ns.shard_retrieve_ms[s]);
  std::printf("  (parallel fanouts: %zu)\n", ns.parallel_retrieve_fanouts);

  std::fprintf(json, "    \"baseline_rps\": %.0f, \"baseline_retrieve_ms\": %.2f,\n",
               baseline_rps, bs.retrieve_ms);
  std::fprintf(json, "    \"fused_parallel_rps\": %.0f, \"fast_accumulate_rps\": %.0f,\n",
               new_rps, fast_rps);
  std::fprintf(json,
               "    \"retrieve_stage_speedup_b16\": %.2f, \"rps_speedup_b16\": %.2f, "
               "\"fast_retrieve_stage_speedup_b16\": %.2f,\n",
               retrieve_speedup, new_rps / baseline_rps, bs.retrieve_ms / fs.retrieve_ms);
  std::fprintf(json, "    \"stages_b16\": ");
  json_stages(json, ns);
  std::fprintf(json, "\n  },\n");
}

/// Encode-bound scenario: a wide autoencoder (the paper's production shape —
/// hidden 256, code 48) and 8 virtual tokens put substantial per-request
/// encode work next to retrieval. The baseline is the engine's serial
/// reference path (retrieve_serial: per-request encode + per-query crossbar
/// search — bit-identical results, no batching), the same comparator the
/// batched-retrieval microbench uses; the staged pipeline runs on ONE worker
/// so the speedup isolates batching, not thread parallelism.
void bench_encode_bound(FILE* json, std::size_t n_requests, std::size_t n_users) {
  WorkloadConfig wc;
  wc.d_model = 32;
  wc.code_dim = 48;
  wc.ae_hidden = 256;
  wc.n_virtual_tokens = 8;
  wc.keys_per_user = 6;
  wc.crossbar_rows = 128;
  wc.crossbar_cols = 48;
  Workload w(wc, n_users, n_requests);

  std::printf("\n-- encode-bound scenario (AE hidden 256, code 48, 8 virtual tokens; "
              "%zu users, %zu requests, 1 worker) --\n", n_users, n_requests);
  std::fprintf(json, "  \"encode_bound\": {\"users\": %zu, \"requests\": %zu, \"threads\": 1,\n",
               n_users, n_requests);

  // Serial reference: one request at a time through the per-query path.
  double serial_rps = 0.0;
  {
    serve::ServingEngine engine(w.model, w.task, w.engine_config(2, 1, 1));
    for (std::size_t u = 0; u < w.n_users; ++u)
      engine.add_deployment(u, w.make_deployment(u));
    engine.start();  // builds the store; the lone worker stays idle
    // Two passes, keep the faster one: the first doubles as warmup, and a
    // faster serial baseline makes the reported speedup conservative.
    double serial_ms = 1e300;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = now_ms();
      for (const auto& [u, q] : w.requests) (void)engine.retrieve_serial(u, q);
      serial_ms = std::min(serial_ms, now_ms() - t0);
    }
    engine.stop();
    serial_rps = 1000.0 * static_cast<double>(w.requests.size()) / serial_ms;
    std::printf("  %8s %12s %10s %10s\n", "path", "req/s", "p50ms", "p95ms");
    std::printf("  %8s %12.0f %10s %10s\n", "serial", serial_rps, "-", "-");
    std::fprintf(json, "    \"serial_rps\": %.0f,\n", serial_rps);
  }

  serve::StatsSnapshot last{};
  double b16_speedup = 0.0;
  for (const std::size_t batch : {1u, 8u, 16u}) {
    // Best of two passes, symmetric with the serial baseline above.
    serve::StatsSnapshot s;
    const double rps = best_of_two(w, w.engine_config(/*shards=*/2, /*threads=*/1, batch), &s);
    std::printf("  %8zu %12.0f %10.2f %10.2f   (%.2fx vs serial)\n", batch, rps,
                s.p50_latency_ms, s.p95_latency_ms, rps / serial_rps);
    print_stages(s);
    std::fprintf(json, "    \"b%zu_rps\": %.0f,\n", batch, rps);
    if (batch == 16) b16_speedup = rps / serial_rps;
    last = s;
  }
  std::fprintf(json, "    \"speedup_b16_vs_serial\": %.2f,\n    \"stages_b16\": ", b16_speedup);
  json_stages(json, last);
  std::fprintf(json, "\n  },\n");
}

}  // namespace

int main() {
  std::size_t n_requests = 256, n_users = 16;
  if (const char* e = std::getenv("NVCIM_SERVE_REQUESTS"))
    n_requests = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("NVCIM_SERVE_USERS")) n_users = std::strtoul(e, nullptr, 10);
  // Comma/space-separated scenario filter, e.g. NVCIM_SERVE_SCENARIO=obs runs
  // only bench_obs — CI uses this for the fast live-scrape check. Unset runs
  // everything.
  const char* scenario = std::getenv("NVCIM_SERVE_SCENARIO");
  const auto scenario_on = [&](const char* name) {
    return scenario == nullptr || std::strstr(scenario, name) != nullptr;
  };

  std::printf("================================================================\n");
  std::printf("bench_serve: multi-tenant serving engine throughput\n");
  std::printf("%zu users, %zu requests, 2 shards\n", n_users, n_requests);
  std::printf("================================================================\n");

  FILE* json = std::fopen("BENCH_serve.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_serve.json for writing\n");
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"serve\",\n  \"users\": %zu, \"requests\": %zu,\n",
               n_users, n_requests);

  if (scenario_on("microbench")) bench_batched_vs_per_query(json);
  if (scenario_on("kernel")) bench_kernel(json);
  if (scenario_on("retrieval")) bench_retrieval_bound(json, n_requests, n_users);
  if (scenario_on("two_phase")) bench_two_phase(json, n_requests, n_users);
  if (scenario_on("churn")) bench_churn(json, n_requests, n_users);
  if (scenario_on("obs")) bench_obs(json, n_requests, n_users);
  if (scenario_on("slo")) bench_slo(json, n_requests, n_users);
  if (scenario_on("faults")) bench_faults(json, n_requests, n_users);
  if (scenario_on("encode")) bench_encode_bound(json, n_requests, n_users);

  if (scenario_on("grid")) {
    Workload w(WorkloadConfig{}, n_users, n_requests);
    std::printf("\n-- requests/sec vs batch size and thread count (default workload) --\n");
    std::printf("  %8s %8s %12s %10s %10s %10s\n", "threads", "batch", "req/s", "avgB", "p50ms",
                "p95ms");
    std::fprintf(json, "  \"grid\": [\n");
    bool first = true;
    for (std::size_t threads : {1u, 2u, 4u}) {
      for (std::size_t batch : {1u, 8u, 16u}) {
        serve::StatsSnapshot s;
        const double rps = run_engine(w, /*shards=*/2, threads, batch, &s);
        std::printf("  %8zu %8zu %12.0f %10.1f %10.2f %10.2f\n", threads, batch, rps,
                    s.avg_batch_size, s.p50_latency_ms, s.p95_latency_ms);
        std::fprintf(json, "%s    {\"threads\": %zu, \"batch\": %zu, \"rps\": %.0f}",
                     first ? "" : ",\n", threads, batch, rps);
        first = false;
      }
    }
    std::fprintf(json, "\n  ],\n");
  }
  // Fixed final key: the JSON stays valid under any scenario subset (every
  // section, including the grid, ends with a trailing comma).
  std::fprintf(json, "  \"scenario\": \"%s\"\n}\n", scenario != nullptr ? scenario : "all");
  std::fclose(json);
  std::printf("\ncache: decoded-OVT LRU; per-stage timings in BENCH_serve.json; "
              "raise NVCIM_SERVE_REQUESTS for steadier numbers\n");
  return 0;
}
