// Serving-engine throughput harness: requests/sec of the multi-tenant
// nvcim::serve::ServingEngine as a function of retrieval batch size and
// worker-thread count, plus a microbench of batched vs per-query crossbar
// retrieval (the engine's hot path).
//
// Deployments are synthetic (untrained autoencoder, random keys): the bench
// exercises the serving data path — encode, sharded crossbar search, decode,
// cache — not task accuracy. Scale via NVCIM_SERVE_REQUESTS / NVCIM_SERVE_USERS.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "nvcim/serve/engine.hpp"

using namespace nvcim;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  data::LampTask task{data::lamp1_config()};
  llm::TinyLM model;
  std::size_t n_users;
  std::vector<std::pair<std::size_t, data::Sample>> requests;

  Workload(std::size_t users, std::size_t n_requests) : model(make_model()), n_users(users) {
    Rng rng(42);
    for (std::size_t i = 0; i < n_requests; ++i) {
      const std::size_t u = rng.uniform_index(n_users);
      requests.emplace_back(u, task.sample(rng.uniform_index(task.config().n_domains), rng));
    }
  }

  llm::TinyLM make_model() {
    llm::TinyLmConfig cfg;
    cfg.vocab = task.vocab_size();
    cfg.d_model = 16;
    cfg.n_layers = 1;
    cfg.n_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq = 40;
    cfg.prompt_slots = 8;
    return llm::TinyLM(cfg, 7);
  }

  core::TrainedDeployment make_deployment(std::size_t user, std::size_t n_keys) {
    compress::AutoencoderConfig acfg;
    acfg.input_dim = model.config().d_model;
    acfg.code_dim = 24;
    core::TrainedDeployment d;
    d.autoencoder = std::make_shared<const compress::Autoencoder>(acfg);
    d.n_virtual_tokens = 4;
    Rng rng(1000 + user);
    for (std::size_t k = 0; k < n_keys; ++k) {
      d.keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.stored_codes.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
      d.domains.push_back(k);
    }
    return d;
  }

  serve::ServingConfig engine_config(std::size_t shards, std::size_t threads,
                                     std::size_t batch) const {
    serve::ServingConfig cfg;
    cfg.n_shards = shards;
    cfg.n_threads = threads;
    cfg.max_batch = batch;
    cfg.queue_capacity = 128;
    cfg.cache_capacity = 48;
    cfg.crossbar.rows = 96;
    cfg.crossbar.cols = 32;
    cfg.variation = {nvm::fefet3(), 0.1};
    return cfg;
  }
};

double run_engine(Workload& w, std::size_t shards, std::size_t threads, std::size_t batch,
                  serve::StatsSnapshot* out_stats) {
  serve::ServingEngine engine(w.model, w.task, w.engine_config(shards, threads, batch));
  for (std::size_t u = 0; u < w.n_users; ++u)
    engine.add_deployment(u, w.make_deployment(u, /*n_keys=*/6));
  engine.start();

  const double t0 = now_ms();
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(w.requests.size());
  for (const auto& [u, q] : w.requests) futures.push_back(engine.submit(u, q));
  for (auto& f : futures) f.get();
  const double elapsed_ms = now_ms() - t0;
  if (out_stats != nullptr) *out_stats = engine.stats();
  engine.stop();
  return 1000.0 * static_cast<double>(w.requests.size()) / elapsed_ms;
}

void bench_batched_vs_per_query() {
  std::printf("-- batched vs per-query crossbar retrieval "
              "(one CimRetriever, 64 keys, SSA) --\n");
  retrieval::CimRetriever::Config cfg;
  cfg.crossbar.rows = 96;
  cfg.crossbar.cols = 32;
  cfg.variation = {nvm::fefet3(), 0.1};
  retrieval::CimRetriever r(cfg);
  Rng rng(3);
  std::vector<Matrix> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));
  r.store(keys, rng);

  const std::size_t n_queries = 128;
  std::vector<Matrix> queries;
  for (std::size_t i = 0; i < n_queries; ++i)
    queries.push_back(Matrix::rand_uniform(4, 24, rng, -1.0f, 1.0f));

  const double t0 = now_ms();
  for (const Matrix& q : queries) (void)r.retrieve(q);
  const double per_query_ms = now_ms() - t0;

  std::printf("  %-14s %10.1f ms  (%.0f q/s)\n", "per-query", per_query_ms,
              1000.0 * n_queries / per_query_ms);
  for (std::size_t batch : {8u, 16u, 32u}) {
    const double t1 = now_ms();
    for (std::size_t start = 0; start < n_queries; start += batch) {
      const std::size_t stop = std::min(start + batch, n_queries);
      std::vector<Matrix> chunk(queries.begin() + static_cast<long>(start),
                                queries.begin() + static_cast<long>(stop));
      (void)r.retrieve_batch(r.pack_queries(chunk));
    }
    const double batch_ms = now_ms() - t1;
    std::printf("  batch B=%-5zu %10.1f ms  (%.0f q/s, %.2fx per-query)\n", batch, batch_ms,
                1000.0 * n_queries / batch_ms, per_query_ms / batch_ms);
  }
}

}  // namespace

int main() {
  std::size_t n_requests = 256, n_users = 16;
  if (const char* e = std::getenv("NVCIM_SERVE_REQUESTS"))
    n_requests = std::strtoul(e, nullptr, 10);
  if (const char* e = std::getenv("NVCIM_SERVE_USERS")) n_users = std::strtoul(e, nullptr, 10);

  std::printf("================================================================\n");
  std::printf("bench_serve: multi-tenant serving engine throughput\n");
  std::printf("%zu users, %zu requests, 2 shards\n", n_users, n_requests);
  std::printf("================================================================\n");

  bench_batched_vs_per_query();

  Workload w(n_users, n_requests);
  std::printf("\n-- requests/sec vs batch size and thread count --\n");
  std::printf("  %8s %8s %12s %10s %10s %10s\n", "threads", "batch", "req/s", "avgB", "p50ms",
              "p95ms");
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t batch : {1u, 8u, 16u}) {
      serve::StatsSnapshot s;
      const double rps = run_engine(w, /*shards=*/2, threads, batch, &s);
      std::printf("  %8zu %8zu %12.0f %10.1f %10.2f %10.2f\n", threads, batch, rps,
                  s.avg_batch_size, s.p50_latency_ms, s.p95_latency_ms);
    }
  }
  std::printf("\ncache: decoded-OVT LRU; raise NVCIM_SERVE_REQUESTS for steadier numbers\n");
  return 0;
}
