// Ablations of the design choices DESIGN.md calls out (not in the paper):
//  (a) SSA pooling scales/weights — single-scale vs the paper's {1,2,4};
//  (b) NT noise-band factors — flat vs the magnitude-banded Eq. 4;
//  (c) OVT anchor weight — drift control vs adaptation headroom.
#include "bench_common.hpp"

using namespace nvcim;

int main() {
  bench::print_header("Ablations — SSA scales, NT bands, OVT anchoring");
  core::ExperimentOptions opts = bench::scaled_options();
  opts.buffer_size = 25;
  const auto dev = nvm::fefet3();
  const double sigma = 0.1;

  // (a) SSA scale-set ablation: exact CPU retrieval variants on encoded OVT
  // keys under synthetic storage noise (isolates the search algorithm).
  std::printf("\n--- (a) retrieval scale-set ablation (synthetic keys, σ=%.2f) ---\n", sigma);
  {
    Rng rng(1);
    const std::size_t n_keys = 16, len = 384;
    std::vector<Matrix> keys;
    for (std::size_t k = 0; k < n_keys; ++k) {
      Matrix key(1, len, 0.0f);
      for (std::size_t j = 0; j < len / n_keys; ++j) key(0, k * (len / n_keys) + j) = 1.0f;
      keys.push_back(key);
    }
    struct Variant {
      const char* name;
      retrieval::ScaledSearchConfig cfg;
    };
    std::vector<Variant> variants;
    variants.push_back({"scale {1} (MIPS)", {{1}, {1.0f}}});
    variants.push_back({"scale {2}", {{2}, {1.0f}}});
    variants.push_back({"scale {4}", {{4}, {1.0f}}});
    variants.push_back({"paper {1,2,4}/{1,.8,.6}", {}});
    variants.push_back({"uniform {1,2,4}/{1,1,1}", {{1, 2, 4}, {1.0f, 1.0f, 1.0f}}});

    for (const auto& v : variants) {
      std::size_t hits = 0, trials = 0;
      Rng qr(7);
      for (int rep = 0; rep < 120; ++rep) {
        const std::size_t target = qr.uniform_index(n_keys);
        Matrix q = keys[target];
        for (std::size_t i = 0; i < q.size(); ++i)
          q.at_flat(i) += static_cast<float>(qr.normal(0.0, 1.4));
        // Noisy stored keys (fresh draw per trial, emulating device noise).
        std::vector<Matrix> noisy = keys;
        for (auto& k : noisy)
          for (std::size_t i = 0; i < k.size(); ++i)
            k.at_flat(i) += static_cast<float>(qr.normal(0.0, 0.8));
        hits += retrieval::ssa_retrieve_exact(q, noisy, v.cfg) == target ? 1 : 0;
        ++trials;
      }
      std::printf("%-26s retrieval accuracy %.3f\n", v.name,
                  static_cast<double>(hits) / static_cast<double>(trials));
    }
  }

  // (b) NT band ablation on the end-to-end pipeline.
  std::printf("\n--- (b) NT noise-band ablation (Phi-2, LaMP-1, mean over 5 devices, σ=%.2f) ---\n",
              sigma);
  {
    core::ExperimentContext ctx(llm::phi2_sim(), data::lamp1_config(), opts);
    const core::MethodSpec no_nt{"no NT", false, mitigation::Kind::None,
                                 retrieval::Algorithm::SSA};
    const core::MethodSpec with_nt{"banded NT (Eq.4)", true, mitigation::Kind::None,
                                   retrieval::Algorithm::SSA};
    eval::MeanAccumulator m_no, m_nt;
    for (const auto& d : nvm::table2_devices()) {
      m_no.add(ctx.evaluate(no_nt, d, sigma));
      m_nt.add(ctx.evaluate(with_nt, d, sigma));
    }
    std::printf("%-22s %.3f\n", no_nt.name.c_str(), m_no.mean());
    std::printf("%-22s %.3f\n", with_nt.name.c_str(), m_nt.mean());
  }

  // (c) anchor-weight ablation: oracle per-domain OVT quality and AE
  // encodability as the proximal weight varies.
  std::printf("\n--- (c) OVT anchor-weight ablation (Phi-2, LaMP-1) ---\n");
  {
    data::LampTask task(data::lamp1_config());
    llm::TinyLM model = llm::build_pretrained(llm::phi2_sim(), task.vocab_size(), opts.max_seq,
                                              task.pretraining_corpus(2000, 1), 42);
    compress::AutoencoderConfig ae_cfg;
    ae_cfg.input_dim = model.config().d_model;
    ae_cfg.steps = 600;
    compress::Autoencoder ae(ae_cfg);
    Rng rng(5);
    {
      std::vector<Matrix> rows;
      for (int i = 0; i < 64; ++i)
        rows.push_back(model.embed(task.sample(rng.uniform_index(6), rng).input));
      ae.train(rows);
    }
    std::printf("%-10s %10s %14s\n", "anchor", "oracle acc", "AE rel err");
    for (float anchor : {0.0f, 0.1f, 0.3f, 1.0f}) {
      eval::MeanAccumulator acc, err;
      for (std::size_t d = 0; d < task.config().n_domains; ++d) {
        std::vector<llm::TrainExample> ex;
        std::vector<data::Sample> ss;
        for (int i = 0; i < 5; ++i) {
          ss.push_back(task.sample(d, rng));
          ex.push_back(ss.back().example);
        }
        llm::TunerConfig tc;
        tc.steps = 60;
        tc.seed = 100 + d;
        tc.anchor_weight = anchor;
        tc.init = resample_rows(model.embed(ss[0].input), tc.n_virtual_tokens);
        const Matrix ovt = llm::SoftPromptTuner(tc).train(model, ex);
        const Matrix r8 = resample_rows(ovt, 8);
        const Matrix rec = ae.decode(ae.encode(r8));
        err.add((rec - r8).frobenius_norm() / r8.frobenius_norm());
        for (int i = 0; i < 20; ++i) {
          const data::Sample q = task.sample(d, rng);
          acc.add(model.classify(q.input, task.label_ids(), &ovt) ==
                          static_cast<std::size_t>(q.label)
                      ? 1.0
                      : 0.0);
        }
      }
      std::printf("%-10.1f %10.3f %14.3f\n", anchor, acc.mean(), err.mean());
    }
  }
  return 0;
}
