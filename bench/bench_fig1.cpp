// Fig. 1: edge-LLM performance of four prompt-tuning methods — Vanilla
// (Lester), DEPT, P-tuning v2 (one4all deep prompts) and prefix tuning with
// OVTs (per-domain oracle prefixes) — on two LLMs across four datasets.
#include "bench_common.hpp"

using namespace nvcim;

int main() {
  bench::print_header("Fig. 1 — one4all PT methods vs prefix tuning with OVTs");
  const core::ExperimentOptions opts = bench::scaled_options();

  const std::vector<llm::LlmProfile> models{llm::gemma2b_sim(), llm::phi2_sim()};
  const std::vector<data::LampConfig> tasks{data::lamp1_config(), data::lamp2_config(),
                                            data::lamp3_config(), data::lamp5_config()};

  for (const auto& model : models) {
    std::printf("\n--- %s ---\n", model.name.c_str());
    std::printf("%-8s %9s %8s %8s %8s\n", "dataset", "Vanilla", "DEPT", "P-t*v2", "OVT");
    for (const auto& task : tasks) {
      const core::Fig1Result r = core::run_fig1_cell(model, task, opts);
      std::printf("%-8s %9.3f %8.3f %8.3f %8.3f%s\n", task.name.c_str(), r.vanilla, r.dept,
                  r.ptv2, r.ovt, r.ovt > std::max({r.vanilla, r.dept, r.ptv2}) ? "  <- OVT wins" : "");
    }
  }
  std::printf("\nExpected shape (paper): the OVT column dominates every row.\n");
  return 0;
}
