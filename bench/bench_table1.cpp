// Table I: average LLM performance of NVCiM-PT vs five baselines on
// 5 LaMP datasets × 3 edge LLMs × 5 NVM devices (buffer 25, σ = 0.1).
// Also prints Table II (the device non-ideality presets) for reference.
#include "bench_common.hpp"

using namespace nvcim;

int main() {
  bench::print_header("Table I — methods × devices × LLMs × datasets (σ=0.1, buffer 25)");

  // Table II reference.
  std::printf("\nTable II — device non-ideality presets\n");
  std::printf("%-8s %-7s %7s %7s %7s %7s\n", "name", "paper", "L0", "L1", "L2", "L3");
  for (const auto& d : nvm::table2_devices())
    std::printf("%-8s %-7s %7.4f %7.4f %7.4f %7.4f\n", d.name.c_str(), d.paper_id.c_str(),
                d.sigma_per_level[0], d.sigma_per_level[1], d.sigma_per_level[2],
                d.sigma_per_level[3]);

  core::ExperimentOptions opts = bench::scaled_options();
  opts.buffer_size = 25;
  const double sigma = 0.1;
  const auto methods = core::table1_methods();
  const auto devices = nvm::table2_devices();
  const auto models = llm::edge_llm_profiles();
  const auto tasks = data::all_lamp_configs();

  // metric[device][method] aggregated per model/task below; also track the
  // cross-table average per method for the summary line.
  std::vector<eval::MeanAccumulator> method_avg(methods.size());

  for (const auto& model : models) {
    std::printf("\n===== LLM: %s =====\n", model.name.c_str());
    for (const auto& task : tasks) {
      core::ExperimentContext ctx(model, task, opts);
      const char* metric =
          task.kind == data::TaskKind::Classification ? "Acc" : "Rouge-1";
      std::printf("\n  Dataset %s (%s)\n", task.name.c_str(), metric);
      std::printf("  %-7s", "device");
      for (const auto& m : methods) std::printf(" %13s", m.name.c_str());
      std::printf("\n");
      for (const auto& dev : devices) {
        std::printf("  %-7s", dev.paper_id.c_str());
        double best = -1.0;
        std::size_t best_i = 0;
        std::vector<double> row(methods.size());
        for (std::size_t mi = 0; mi < methods.size(); ++mi) {
          row[mi] = ctx.evaluate(methods[mi], dev, sigma);
          method_avg[mi].add(row[mi]);
          if (row[mi] > best) {
            best = row[mi];
            best_i = mi;
          }
          std::printf(" %13.3f", row[mi]);
        }
        std::printf("  << %s\n", methods[best_i].name.c_str());
      }
    }
  }

  std::printf("\n===== Cross-table method averages =====\n");
  for (std::size_t mi = 0; mi < methods.size(); ++mi)
    std::printf("%-14s %.3f\n", methods[mi].name.c_str(), method_avg[mi].mean());
  std::printf("\nExpected shape (paper): NVCiM-PT leads the average; NVP*(MIPS)\n"
              "shows the value of noise-aware training, mitigation+SSA beats\n"
              "No-Miti(MIPS).\n");
  return 0;
}
